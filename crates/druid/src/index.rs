//! Incremental indexes: the Oak backend (I²-Oak) and the on-heap legacy
//! backend (I²-legacy).
//!
//! "For every incoming data tuple, I² updates its internal KV-map, creating
//! a new pair if the tuple's key is absent, or updating in-situ otherwise"
//! (§6). Data is never removed from an I²; once full, it is persisted and
//! disposed — which is why Oak's low-churn default memory manager fits.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use oak_core::{OakError, OakMap, OakMapConfig, OakStatsSource, OrderedKvMap};
use oak_gcheap::{layout, HeapModel, NoopHeap};
use oak_skiplist::SkipListMap;

use crate::agg::{self, AggValue};
use crate::dictionary::Dictionary;
use crate::row::{encode_i64, DimKind, DimValue, InputRow, Schema};

/// RAM footprint report for Figure 5c.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexFootprint {
    /// Bytes holding raw key/value data.
    pub data_bytes: u64,
    /// Bytes of index metadata (chunks/nodes, entries, headers).
    pub metadata_bytes: u64,
    /// Bytes of on-heap auxiliary structures (dictionaries).
    pub dictionary_bytes: u64,
}

impl IndexFootprint {
    /// Total RAM consumed.
    pub fn total(&self) -> u64 {
        self.data_bytes + self.metadata_bytes + self.dictionary_bytes
    }
}

/// Common interface of the two I² backends.
pub trait IncrementalIndex: Send + Sync {
    /// Ingests one tuple (creates or folds in place).
    fn insert(&self, row: &InputRow) -> Result<(), OakError>;

    /// Number of distinct keys currently held.
    fn num_keys(&self) -> usize;

    /// Scans keys with `t0 ≤ timestamp < t1` in key order, delivering the
    /// timestamp and materialized aggregate values. Returns keys visited.
    fn scan(&self, t0: i64, t1: i64, f: &mut dyn FnMut(i64, &[AggValue]) -> bool) -> usize;

    /// Raw scan over all keys in key order: serialized key and aggregate
    /// (or raw-row) bytes. Feeds segment persistence
    /// ([`crate::segment::Segment::persist`]).
    fn scan_raw(&self, f: &mut dyn FnMut(&[u8], &[u8]) -> bool) -> usize;

    /// RAM footprint breakdown.
    fn footprint(&self) -> IndexFootprint;

    /// The schema this index was built with.
    fn schema(&self) -> &Schema;
}

/// Encodes a row's key: order-preserving timestamp, then one 8-byte field
/// per dimension (dictionary codeword or encoded long).
fn encode_key(schema: &Schema, dicts: &[Dictionary], row: &InputRow, out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&encode_i64(row.timestamp));
    for (i, (_, kind)) in schema.dimensions.iter().enumerate() {
        match (kind, &row.dims[i]) {
            (DimKind::Str, DimValue::Str(s)) => {
                out.extend_from_slice(&(dicts[i].encode(s) as u64).to_be_bytes())
            }
            (DimKind::Long, DimValue::Long(v)) => out.extend_from_slice(&encode_i64(*v)),
            (kind, value) => panic!("dimension {i} kind mismatch: {kind:?} vs {value:?}"),
        }
    }
}

fn decode_ts(key: &[u8]) -> i64 {
    crate::row::decode_i64(&key[..8])
}

// ---------------------------------------------------------------------------
// I²-Oak
// ---------------------------------------------------------------------------

/// The Oak-backed incremental index (the paper's I²-Oak prototype).
///
/// Generic over the backing map: any [`OrderedKvMap`] that also reports
/// Oak-shaped statistics ([`OakStatsSource`]) works, so the same index
/// runs over a single [`OakMap`] (the default) or a
/// [`ShardedOakMap`](oak_core::ShardedOakMap) via [`OakIndex::with_map`].
///
/// ```
/// use oak_core::OakMapConfig;
/// use oak_druid::agg::{AggSpec, AggValue};
/// use oak_druid::index::{IncrementalIndex, OakIndex};
/// use oak_druid::row::{DimKind, DimValue, InputRow, Schema};
///
/// let schema = Schema::rollup(
///     vec![("page".into(), DimKind::Str)],
///     vec![AggSpec::Count, AggSpec::DoubleSum(0)],
/// );
/// let idx = OakIndex::new(schema, OakMapConfig::small());
/// for latency in [1.0, 2.0, 4.0] {
///     idx.insert(&InputRow {
///         timestamp: 1_000,
///         dims: vec![DimValue::Str("/home".into())],
///         metrics: vec![latency],
///     }).unwrap();
/// }
/// assert_eq!(idx.num_keys(), 1); // rolled up
/// idx.scan(0, 2_000, &mut |_, vals| {
///     assert_eq!(vals[0], AggValue::Long(3));
///     assert_eq!(vals[1], AggValue::Double(7.0));
///     true
/// });
/// ```
pub struct OakIndex<M: OrderedKvMap + OakStatsSource = OakMap> {
    schema: Schema,
    dicts: Vec<Dictionary>,
    map: M,
    chunk_capacity: u32,
    /// Plain-mode row id generator (gives raw rows unique keys).
    row_id: AtomicU64,
}

impl OakIndex {
    /// Creates an index over a fresh Oak map.
    pub fn new(schema: Schema, config: OakMapConfig) -> Self {
        let chunk_capacity = config.chunk_capacity;
        Self::with_map(schema, OakMap::with_config(config), chunk_capacity)
    }
}

impl<M: OrderedKvMap + OakStatsSource> OakIndex<M> {
    /// Creates an index over an existing map (e.g. a pre-built
    /// [`ShardedOakMap`](oak_core::ShardedOakMap)). `chunk_capacity` is
    /// the per-chunk entry count used for metadata estimation in
    /// [`footprint`](IncrementalIndex::footprint).
    pub fn with_map(schema: Schema, map: M, chunk_capacity: u32) -> Self {
        let dicts = (0..schema.dimensions.len())
            .map(|_| Dictionary::new())
            .collect();
        OakIndex {
            schema,
            dicts,
            map,
            chunk_capacity,
            row_id: AtomicU64::new(0),
        }
    }

    /// The underlying map.
    pub fn map(&self) -> &M {
        &self.map
    }

    fn serialize_plain(&self, row: &InputRow) -> Vec<u8> {
        let mut v = Vec::with_capacity(8 * row.metrics.len());
        for m in &row.metrics {
            v.extend_from_slice(&m.to_le_bytes());
        }
        if v.is_empty() {
            v.push(0);
        }
        v
    }
}

impl<M: OrderedKvMap + OakStatsSource> IncrementalIndex for OakIndex<M> {
    fn insert(&self, row: &InputRow) -> Result<(), OakError> {
        let mut key = Vec::with_capacity(self.schema.key_size() + 8);
        encode_key(&self.schema, &self.dicts, row, &mut key);
        if self.schema.rollup {
            // The paper's write path: one atomic lambda updating every
            // aggregate of the key.
            let init = agg::init_all(&self.schema.aggregators, row);
            let specs = &self.schema.aggregators;
            self.map
                .put_if_absent_compute_if_present(&key, &init, &|buf| {
                    agg::fold_all(specs, buf, row);
                })?;
        } else {
            // Plain index: raw rows under unique keys.
            let id = self.row_id.fetch_add(1, Ordering::Relaxed);
            key.extend_from_slice(&id.to_be_bytes());
            self.map.put(&key, &self.serialize_plain(row))?;
        }
        Ok(())
    }

    fn num_keys(&self) -> usize {
        self.map.len()
    }

    fn scan(&self, t0: i64, t1: i64, f: &mut dyn FnMut(i64, &[AggValue]) -> bool) -> usize {
        let lo = encode_i64(t0);
        let hi = encode_i64(t1);
        let specs = &self.schema.aggregators;
        self.map.ascend(Some(&lo), Some(&hi), &mut |k, v| {
            let vals = if self.schema.rollup {
                agg::read_all(specs, v)
            } else {
                Vec::new()
            };
            f(decode_ts(k), &vals)
        })
    }

    fn scan_raw(&self, f: &mut dyn FnMut(&[u8], &[u8]) -> bool) -> usize {
        self.map.ascend(None, None, f)
    }

    fn footprint(&self) -> IndexFootprint {
        let stats = self.map.oak_stats();
        // Data: live off-heap bytes minus value headers (headers count as
        // metadata). Metadata: headers + on-heap chunk structures (entries
        // arrays at 20 B/entry plus per-chunk fixed overhead and the lazy
        // index, ~128 B/chunk).
        let headers = stats.pool.header_bytes;
        let chunk_meta = stats.chunks as u64 * (20 * self.chunk_capacity as u64 + 128);
        IndexFootprint {
            data_bytes: stats.pool.live_bytes.saturating_sub(headers),
            metadata_bytes: headers + chunk_meta,
            dictionary_bytes: self.dicts.iter().map(|d| d.footprint_bytes() as u64).sum(),
        }
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }
}

// ---------------------------------------------------------------------------
// I²-legacy
// ---------------------------------------------------------------------------

/// The legacy on-heap incremental index: a `ConcurrentSkipListMap`-style
/// map holding boxed keys and aggregator objects, charged against a
/// simulated JVM heap.
pub struct LegacyIndex {
    schema: Schema,
    dicts: Vec<Dictionary>,
    list: SkipListMap<Vec<u8>, Mutex<Vec<u8>>>,
    heap: Arc<dyn HeapModel>,
    /// Set when the heap is a [`ManagedHeap`](oak_gcheap::ManagedHeap), for
    /// footprint/GC statistics.
    managed: Option<Arc<oak_gcheap::ManagedHeap>>,
    row_id: AtomicU64,
}

impl LegacyIndex {
    /// Creates an index accounted against a simulated JVM heap.
    pub fn with_managed_heap(schema: Schema, heap: Arc<oak_gcheap::ManagedHeap>) -> Self {
        let mut idx = Self::new(schema, heap.clone());
        idx.managed = Some(heap);
        idx
    }

    /// Creates an index accounted against `heap` (use
    /// [`NoopHeap`] for pure functionality tests).
    pub fn new(schema: Schema, heap: Arc<dyn HeapModel>) -> Self {
        let n_aggs = schema.aggregators.len();
        let dicts: Vec<Dictionary> = (0..schema.dimensions.len())
            .map(|_| Dictionary::new())
            .collect();
        // Java layout: boxed key array; value = aggregator object per
        // aggregator plus their backing state.
        let list = SkipListMap::with_heap(
            heap.clone(),
            |k: &Vec<u8>| layout::boxed_bytes(k.len()),
            move |v: &Mutex<Vec<u8>>| {
                layout::object(2 * layout::REF_SIZE)
                    + n_aggs * layout::object(16)
                    + layout::byte_array(v.lock().len())
            },
        );
        LegacyIndex {
            schema,
            dicts,
            list,
            heap,
            managed: None,
            row_id: AtomicU64::new(0),
        }
    }

    /// Convenience constructor without heap accounting.
    pub fn unaccounted(schema: Schema) -> Self {
        Self::new(schema, Arc::new(NoopHeap))
    }

    /// The heap model backing this index.
    pub fn heap(&self) -> &Arc<dyn HeapModel> {
        &self.heap
    }
}

impl IncrementalIndex for LegacyIndex {
    fn insert(&self, row: &InputRow) -> Result<(), OakError> {
        let mut key = Vec::with_capacity(self.schema.key_size() + 8);
        encode_key(&self.schema, &self.dicts, row, &mut key);
        if self.schema.rollup {
            let specs = &self.schema.aggregators;
            loop {
                let folded = self
                    .list
                    .get_with(&key, |m| {
                        agg::fold_all(specs, &mut m.lock(), row);
                    })
                    .is_some();
                if folded {
                    return Ok(());
                }
                let init = agg::init_all(specs, row);
                if self.list.put_if_absent(key.clone(), Mutex::new(init)) {
                    return Ok(());
                }
                // Raced with a concurrent creator; fold into theirs.
            }
        } else {
            let id = self.row_id.fetch_add(1, Ordering::Relaxed);
            key.extend_from_slice(&id.to_be_bytes());
            let mut v = Vec::with_capacity(8 * row.metrics.len());
            for m in &row.metrics {
                v.extend_from_slice(&m.to_le_bytes());
            }
            self.list.put(key, Mutex::new(v));
            Ok(())
        }
    }

    fn num_keys(&self) -> usize {
        self.list.len()
    }

    fn scan(&self, t0: i64, t1: i64, f: &mut dyn FnMut(i64, &[AggValue]) -> bool) -> usize {
        let lo = encode_i64(t0).to_vec();
        let hi = encode_i64(t1).to_vec();
        let specs = &self.schema.aggregators;
        self.list.for_each_range(Some(&lo), Some(&hi), |k, m| {
            let vals = if self.schema.rollup {
                agg::read_all(specs, &m.lock())
            } else {
                Vec::new()
            };
            f(decode_ts(k), &vals)
        })
    }

    fn scan_raw(&self, f: &mut dyn FnMut(&[u8], &[u8]) -> bool) -> usize {
        self.list.for_each_range(None, None, |k, m| f(k, &m.lock()))
    }

    fn footprint(&self) -> IndexFootprint {
        // For a ManagedHeap, live_bytes is the simulated JVM usage; split
        // data vs. metadata by recomputing the raw payload portion.
        let raw: u64 = {
            let mut sum = 0u64;
            self.list.for_each_range(None, None, |k, m| {
                sum += k.len() as u64 + m.lock().len() as u64;
                true
            });
            sum
        };
        let total = match &self.managed {
            Some(h) => h.stats().live_bytes,
            None => raw,
        };
        IndexFootprint {
            data_bytes: raw,
            metadata_bytes: total.saturating_sub(raw),
            dictionary_bytes: self.dicts.iter().map(|d| d.footprint_bytes() as u64).sum(),
        }
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggSpec;

    fn schema() -> Schema {
        Schema::rollup(
            vec![
                ("page".to_string(), DimKind::Str),
                ("status".to_string(), DimKind::Long),
            ],
            vec![
                AggSpec::Count,
                AggSpec::DoubleSum(0),
                AggSpec::HllUniqueDim(0),
            ],
        )
    }

    fn row(ts: i64, page: &str, status: i64, latency: f64) -> InputRow {
        InputRow {
            timestamp: ts,
            dims: vec![DimValue::Str(page.into()), DimValue::Long(status)],
            metrics: vec![latency],
        }
    }

    fn check_backend(idx: &dyn IncrementalIndex) {
        // Same (ts, page, status) rolls up; different keys do not.
        idx.insert(&row(1000, "a", 200, 1.0)).unwrap();
        idx.insert(&row(1000, "a", 200, 2.0)).unwrap();
        idx.insert(&row(1000, "b", 200, 4.0)).unwrap();
        idx.insert(&row(2000, "a", 200, 8.0)).unwrap();
        assert_eq!(idx.num_keys(), 3);

        // Scan [1000, 2000): two keys at ts 1000.
        let mut seen = Vec::new();
        idx.scan(1000, 2000, &mut |ts, vals| {
            seen.push((ts, vals.to_vec()));
            true
        });
        assert_eq!(seen.len(), 2);
        for (ts, _) in &seen {
            assert_eq!(*ts, 1000);
        }
        // The rolled-up "a" key has count 2 and sum 3.0.
        let counts: Vec<i64> = seen
            .iter()
            .map(|(_, v)| match v[0] {
                AggValue::Long(c) => c,
                _ => panic!(),
            })
            .collect();
        assert!(counts.contains(&2) && counts.contains(&1));
        let sums: Vec<f64> = seen
            .iter()
            .map(|(_, v)| match v[1] {
                AggValue::Double(s) => s,
                _ => panic!(),
            })
            .collect();
        assert!(sums.contains(&3.0) && sums.contains(&4.0));

        // Unbounded-ish scan sees all three keys.
        let mut n = 0;
        idx.scan(0, 10_000, &mut |_, _| {
            n += 1;
            true
        });
        assert_eq!(n, 3);
    }

    #[test]
    fn oak_backend_rolls_up() {
        let idx = OakIndex::new(schema(), OakMapConfig::small());
        check_backend(&idx);
        assert!(idx.footprint().total() > 0);
    }

    #[test]
    fn legacy_backend_rolls_up() {
        let idx = LegacyIndex::unaccounted(schema());
        check_backend(&idx);
        assert!(idx.footprint().total() > 0);
    }

    #[test]
    fn sharded_backend_rolls_up() {
        let config = OakMapConfig::small();
        let cap = config.chunk_capacity;
        let idx = OakIndex::with_map(
            schema(),
            oak_core::ShardedOakMap::with_config(4, config),
            cap,
        );
        check_backend(&idx);
        assert!(idx.footprint().total() > 0);
        assert_eq!(idx.map().shard_stats().len(), 4);
    }

    #[test]
    fn plain_mode_keeps_every_row() {
        let s = Schema::plain(vec![("page".to_string(), DimKind::Str)]);
        let idx = OakIndex::new(s, OakMapConfig::small());
        for i in 0..100 {
            idx.insert(&InputRow {
                timestamp: 1000,
                dims: vec![DimValue::Str("same".into())],
                metrics: vec![i as f64],
            })
            .unwrap();
        }
        // No rollup: every duplicate tuple gets its own key.
        assert_eq!(idx.num_keys(), 100);
    }

    #[test]
    fn concurrent_ingestion_rolls_up_exactly() {
        let idx = Arc::new(OakIndex::new(
            Schema::rollup(
                vec![("page".to_string(), DimKind::Str)],
                vec![AggSpec::Count, AggSpec::DoubleSum(0)],
            ),
            OakMapConfig::small(),
        ));
        let mut handles = Vec::new();
        for t in 0..4 {
            let idx = idx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1_000u64 {
                    idx.insert(&InputRow {
                        timestamp: (i % 10) as i64,
                        dims: vec![DimValue::Str(format!("page-{}", (t + i) % 7))],
                        metrics: vec![1.0],
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Total count across all keys must equal total tuples.
        let mut total = 0i64;
        let mut sum = 0.0f64;
        idx.scan(i64::MIN / 2, i64::MAX / 2, &mut |_, vals| {
            if let AggValue::Long(c) = vals[0] {
                total += c;
            }
            if let AggValue::Double(s) = vals[1] {
                sum += s;
            }
            true
        });
        assert_eq!(total, 4_000);
        assert_eq!(sum, 4_000.0);
        assert!(idx.num_keys() <= 70);
    }

    #[test]
    fn timestamps_order_the_scan() {
        let idx = OakIndex::new(schema(), OakMapConfig::small());
        for ts in [5_000i64, 1_000, 3_000, -2_000, 4_000] {
            idx.insert(&row(ts, "x", 1, 1.0)).unwrap();
        }
        let mut seen = Vec::new();
        idx.scan(i64::MIN / 2, i64::MAX / 2, &mut |ts, _| {
            seen.push(ts);
            true
        });
        assert_eq!(seen, vec![-2_000, 1_000, 3_000, 4_000, 5_000]);
    }
}
