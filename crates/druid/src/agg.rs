//! Rollup aggregators over off-heap state.
//!
//! Each aggregator owns a fixed-size slice of the value buffer; `init`
//! materializes the first row, `fold` accumulates subsequent rows in
//! place. Because all states are fixed-size, the whole aggregate tuple is
//! updated by one Oak `compute` lambda with no reallocation — the paper's
//! "atomic update of multiple aggregates within a single lambda" (§6).

use crate::row::InputRow;
use crate::sketch::{hll, quantile};

/// An aggregator specification. Metric indexes refer to
/// [`InputRow::metrics`]; `HllUniqueDim` refers to a dimension position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggSpec {
    /// Row count.
    Count,
    /// Sum of a metric, kept as i64.
    LongSum(usize),
    /// Sum of a metric, kept as f64.
    DoubleSum(usize),
    /// Minimum of a metric.
    DoubleMin(usize),
    /// Maximum of a metric.
    DoubleMax(usize),
    /// Approximate distinct count of a dimension (HyperLogLog).
    HllUniqueDim(usize),
    /// Approximate quantiles of a metric (reservoir sketch).
    Quantile(usize),
    /// Value of a metric in the earliest-timestamped row (Druid's
    /// `doubleFirst`). State: `(timestamp i64, value f64)`.
    DoubleFirst(usize),
    /// Value of a metric in the latest-timestamped row (`doubleLast`).
    DoubleLast(usize),
}

/// A materialized aggregate read back from the index.
#[derive(Debug, Clone, PartialEq)]
pub enum AggValue {
    /// Count / LongSum result.
    Long(i64),
    /// DoubleSum / DoubleMin / DoubleMax result.
    Double(f64),
    /// HLL estimate.
    Estimate(f64),
    /// The q = 0.5 quantile (helpers expose other quantiles).
    Median(Option<f64>),
    /// First/Last result: `(timestamp, value)`.
    Timestamped(i64, f64),
}

impl AggSpec {
    /// Size in bytes of this aggregator's serialized state.
    pub fn state_size(&self) -> usize {
        match self {
            AggSpec::Count | AggSpec::LongSum(_) => 8,
            AggSpec::DoubleSum(_) | AggSpec::DoubleMin(_) | AggSpec::DoubleMax(_) => 8,
            AggSpec::HllUniqueDim(_) => hll::STATE_SIZE,
            AggSpec::Quantile(_) => quantile::STATE_SIZE,
            AggSpec::DoubleFirst(_) | AggSpec::DoubleLast(_) => 16,
        }
    }

    fn write_ts_val(out: &mut [u8], ts: i64, v: f64) {
        out[..8].copy_from_slice(&ts.to_le_bytes());
        out[8..16].copy_from_slice(&v.to_le_bytes());
    }

    fn read_ts_val(state: &[u8]) -> (i64, f64) {
        (
            i64::from_le_bytes(state[..8].try_into().unwrap()),
            f64::from_le_bytes(state[8..16].try_into().unwrap()),
        )
    }

    fn dim_identity(row: &InputRow, dim: usize) -> u64 {
        match &row.dims[dim] {
            crate::row::DimValue::Str(s) => {
                // Stable content hash (FNV-1a) — dictionary codes are not
                // available at fold time and identity only needs stability.
                let mut h: u64 = 0xcbf29ce484222325;
                for &b in s.as_bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100000001b3);
                }
                h
            }
            crate::row::DimValue::Long(v) => *v as u64,
        }
    }

    /// Writes the state for the first row of a key.
    pub fn init(&self, out: &mut [u8], row: &InputRow) {
        debug_assert_eq!(out.len(), self.state_size());
        match self {
            AggSpec::Count => out.copy_from_slice(&1i64.to_le_bytes()),
            AggSpec::LongSum(m) => out.copy_from_slice(&(row.metrics[*m] as i64).to_le_bytes()),
            AggSpec::DoubleSum(m) | AggSpec::DoubleMin(m) | AggSpec::DoubleMax(m) => {
                out.copy_from_slice(&row.metrics[*m].to_le_bytes())
            }
            AggSpec::HllUniqueDim(d) => {
                hll::init(out);
                hll::add(out, Self::dim_identity(row, *d));
            }
            AggSpec::Quantile(m) => {
                quantile::init(out);
                quantile::add(out, row.metrics[*m]);
            }
            AggSpec::DoubleFirst(m) | AggSpec::DoubleLast(m) => {
                Self::write_ts_val(out, row.timestamp, row.metrics[*m]);
            }
        }
    }

    /// Folds a subsequent row into existing state, in place.
    pub fn fold(&self, state: &mut [u8], row: &InputRow) {
        match self {
            AggSpec::Count => {
                let c = i64::from_le_bytes(state[..8].try_into().unwrap());
                state.copy_from_slice(&(c + 1).to_le_bytes());
            }
            AggSpec::LongSum(m) => {
                let c = i64::from_le_bytes(state[..8].try_into().unwrap());
                state.copy_from_slice(&(c + row.metrics[*m] as i64).to_le_bytes());
            }
            AggSpec::DoubleSum(m) => {
                let c = f64::from_le_bytes(state[..8].try_into().unwrap());
                state.copy_from_slice(&(c + row.metrics[*m]).to_le_bytes());
            }
            AggSpec::DoubleMin(m) => {
                let c = f64::from_le_bytes(state[..8].try_into().unwrap());
                state.copy_from_slice(&c.min(row.metrics[*m]).to_le_bytes());
            }
            AggSpec::DoubleMax(m) => {
                let c = f64::from_le_bytes(state[..8].try_into().unwrap());
                state.copy_from_slice(&c.max(row.metrics[*m]).to_le_bytes());
            }
            AggSpec::HllUniqueDim(d) => hll::add(state, Self::dim_identity(row, *d)),
            AggSpec::Quantile(m) => quantile::add(state, row.metrics[*m]),
            AggSpec::DoubleFirst(m) => {
                let (ts, _) = Self::read_ts_val(state);
                if row.timestamp < ts {
                    Self::write_ts_val(state, row.timestamp, row.metrics[*m]);
                }
            }
            AggSpec::DoubleLast(m) => {
                let (ts, _) = Self::read_ts_val(state);
                if row.timestamp >= ts {
                    Self::write_ts_val(state, row.timestamp, row.metrics[*m]);
                }
            }
        }
    }

    /// Merges state `other` into `state` (both for this aggregator):
    /// counts and sums add, min/max combine, HLL takes register-wise max,
    /// and quantile reservoirs fold samples (approximate). Used when
    /// persisted segments are compacted.
    pub fn merge(&self, state: &mut [u8], other: &[u8]) {
        match self {
            AggSpec::Count | AggSpec::LongSum(_) => {
                let a = i64::from_le_bytes(state[..8].try_into().unwrap());
                let b = i64::from_le_bytes(other[..8].try_into().unwrap());
                state.copy_from_slice(&(a + b).to_le_bytes());
            }
            AggSpec::DoubleSum(_) => {
                let a = f64::from_le_bytes(state[..8].try_into().unwrap());
                let b = f64::from_le_bytes(other[..8].try_into().unwrap());
                state.copy_from_slice(&(a + b).to_le_bytes());
            }
            AggSpec::DoubleMin(_) => {
                let a = f64::from_le_bytes(state[..8].try_into().unwrap());
                let b = f64::from_le_bytes(other[..8].try_into().unwrap());
                state.copy_from_slice(&a.min(b).to_le_bytes());
            }
            AggSpec::DoubleMax(_) => {
                let a = f64::from_le_bytes(state[..8].try_into().unwrap());
                let b = f64::from_le_bytes(other[..8].try_into().unwrap());
                state.copy_from_slice(&a.max(b).to_le_bytes());
            }
            AggSpec::HllUniqueDim(_) => hll::merge(state, other),
            AggSpec::Quantile(_) => {
                // Fold the other reservoir's samples in (approximate: the
                // sample weights skew slightly, acceptable for sketches).
                let n = quantile::count(other).min(quantile::K as u64) as usize;
                for i in 0..n {
                    let v = f64::from_le_bytes(other[8 + 8 * i..16 + 8 * i].try_into().unwrap());
                    quantile::add(state, v);
                }
            }
            AggSpec::DoubleFirst(_) => {
                let (a_ts, _) = Self::read_ts_val(state);
                let (b_ts, b_v) = Self::read_ts_val(other);
                if b_ts < a_ts {
                    Self::write_ts_val(state, b_ts, b_v);
                }
            }
            AggSpec::DoubleLast(_) => {
                let (a_ts, _) = Self::read_ts_val(state);
                let (b_ts, b_v) = Self::read_ts_val(other);
                if b_ts >= a_ts {
                    Self::write_ts_val(state, b_ts, b_v);
                }
            }
        }
    }

    /// Reads the materialized result out of the state.
    pub fn read(&self, state: &[u8]) -> AggValue {
        match self {
            AggSpec::Count | AggSpec::LongSum(_) => {
                AggValue::Long(i64::from_le_bytes(state[..8].try_into().unwrap()))
            }
            AggSpec::DoubleSum(_) | AggSpec::DoubleMin(_) | AggSpec::DoubleMax(_) => {
                AggValue::Double(f64::from_le_bytes(state[..8].try_into().unwrap()))
            }
            AggSpec::HllUniqueDim(_) => AggValue::Estimate(hll::estimate(state)),
            AggSpec::Quantile(_) => AggValue::Median(quantile::query(state, 0.5)),
            AggSpec::DoubleFirst(_) | AggSpec::DoubleLast(_) => {
                let (ts, v) = Self::read_ts_val(state);
                AggValue::Timestamped(ts, v)
            }
        }
    }
}

/// Initializes a full aggregate tuple (all aggregators, concatenated).
pub fn init_all(specs: &[AggSpec], row: &InputRow) -> Vec<u8> {
    let total: usize = specs.iter().map(|a| a.state_size()).sum();
    let mut out = vec![0u8; total];
    let mut off = 0;
    for spec in specs {
        let sz = spec.state_size();
        spec.init(&mut out[off..off + sz], row);
        off += sz;
    }
    out
}

/// Folds `row` into a full aggregate tuple in place.
pub fn fold_all(specs: &[AggSpec], state: &mut [u8], row: &InputRow) {
    let mut off = 0;
    for spec in specs {
        let sz = spec.state_size();
        spec.fold(&mut state[off..off + sz], row);
        off += sz;
    }
}

/// Merges full aggregate tuple `other` into `state` in place.
pub fn merge_all(specs: &[AggSpec], state: &mut [u8], other: &[u8]) {
    let mut off = 0;
    for spec in specs {
        let sz = spec.state_size();
        spec.merge(&mut state[off..off + sz], &other[off..off + sz]);
        off += sz;
    }
}

/// Reads all aggregators from a full tuple.
pub fn read_all(specs: &[AggSpec], state: &[u8]) -> Vec<AggValue> {
    let mut out = Vec::with_capacity(specs.len());
    let mut off = 0;
    for spec in specs {
        let sz = spec.state_size();
        out.push(spec.read(&state[off..off + sz]));
        off += sz;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::DimValue;

    fn row(ts: i64, page: &str, latency: f64) -> InputRow {
        InputRow {
            timestamp: ts,
            dims: vec![DimValue::Str(page.into())],
            metrics: vec![latency],
        }
    }

    #[test]
    fn count_and_sums() {
        let specs = vec![AggSpec::Count, AggSpec::DoubleSum(0), AggSpec::LongSum(0)];
        let r1 = row(0, "a", 1.5);
        let mut st = init_all(&specs, &r1);
        fold_all(&specs, &mut st, &row(0, "a", 2.5));
        fold_all(&specs, &mut st, &row(0, "a", 4.0));
        let vals = read_all(&specs, &st);
        assert_eq!(vals[0], AggValue::Long(3));
        assert_eq!(vals[1], AggValue::Double(8.0));
        assert_eq!(vals[2], AggValue::Long(1 + 2 + 4));
    }

    #[test]
    fn min_max() {
        let specs = vec![AggSpec::DoubleMin(0), AggSpec::DoubleMax(0)];
        let mut st = init_all(&specs, &row(0, "a", 5.0));
        for v in [3.0, 9.0, 4.0] {
            fold_all(&specs, &mut st, &row(0, "a", v));
        }
        assert_eq!(
            read_all(&specs, &st),
            vec![AggValue::Double(3.0), AggValue::Double(9.0)]
        );
    }

    #[test]
    fn hll_unique_dim() {
        let specs = vec![AggSpec::HllUniqueDim(0)];
        let mut st = init_all(&specs, &row(0, "page-0", 0.0));
        for i in 1..2_000 {
            fold_all(&specs, &mut st, &row(0, &format!("page-{i}"), 0.0));
        }
        // Re-add duplicates.
        for i in 0..2_000 {
            fold_all(&specs, &mut st, &row(0, &format!("page-{}", i % 10), 0.0));
        }
        let AggValue::Estimate(est) = read_all(&specs, &st)[0] else {
            panic!()
        };
        assert!((est - 2_000.0).abs() / 2_000.0 < 0.15, "est {est}");
    }

    #[test]
    fn quantile_median() {
        let specs = vec![AggSpec::Quantile(0)];
        let mut st = init_all(&specs, &row(0, "a", 0.0));
        for i in 1..1_000 {
            fold_all(&specs, &mut st, &row(0, "a", i as f64));
        }
        let AggValue::Median(Some(med)) = read_all(&specs, &st)[0] else {
            panic!()
        };
        assert!((med - 500.0).abs() < 200.0, "median {med}");
    }
}

#[cfg(test)]
mod first_last_tests {
    use super::*;
    use crate::row::DimValue;

    fn row_at(ts: i64, v: f64) -> InputRow {
        InputRow {
            timestamp: ts,
            dims: vec![DimValue::Long(0)],
            metrics: vec![v],
        }
    }

    #[test]
    fn first_and_last_track_timestamps() {
        let specs = vec![AggSpec::DoubleFirst(0), AggSpec::DoubleLast(0)];
        let mut st = init_all(&specs, &row_at(100, 1.0));
        fold_all(&specs, &mut st, &row_at(50, 2.0)); // earlier
        fold_all(&specs, &mut st, &row_at(200, 3.0)); // later
        fold_all(&specs, &mut st, &row_at(150, 9.0)); // middle
        let vals = read_all(&specs, &st);
        assert_eq!(vals[0], AggValue::Timestamped(50, 2.0));
        assert_eq!(vals[1], AggValue::Timestamped(200, 3.0));
    }

    #[test]
    fn first_last_merge() {
        let specs = vec![AggSpec::DoubleFirst(0), AggSpec::DoubleLast(0)];
        let mut a = init_all(&specs, &row_at(100, 1.0));
        let b = init_all(&specs, &row_at(10, 7.0));
        merge_all(&specs, &mut a, &b);
        let vals = read_all(&specs, &a);
        assert_eq!(vals[0], AggValue::Timestamped(10, 7.0));
        assert_eq!(vals[1], AggValue::Timestamped(100, 1.0));
    }
}
