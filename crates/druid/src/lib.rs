//! # oak-druid — the Druid incremental-index (I²) case study (paper §6)
//!
//! Apache Druid's *incremental index* is "a data structure that absorbs new
//! data while serving queries in parallel". This crate reproduces the
//! paper's prototype integration of Oak into that component:
//!
//! * multi-dimensional tuples with a timestamp as the primary dimension
//!   ([`row`]);
//! * dynamic dictionaries mapping variable-size (string) dimension values
//!   to numeric codewords ([`dictionary`]) — keys become flat arrays of
//!   integers;
//! * *rollup* indexes whose values are materialized aggregates, including
//!   sketches for approximate statistics ([`agg`], [`sketch`]), and *plain*
//!   indexes storing raw rows;
//! * two interchangeable backends ([`index`]): **I²-Oak** over
//!   [`oak_core::OakMap`] — the write path uses
//!   `put_if_absent_compute_if_present` to update all aggregates of a key
//!   atomically in one lambda, and the read path is a lightweight facade
//!   over Oak buffers — and **I²-legacy** over the on-heap
//!   [`oak_skiplist::SkipListMap`] with simulated JVM heap accounting,
//!   reproducing Figures 5a–5c.

#![warn(missing_docs)]

pub mod agg;
pub mod dictionary;
pub mod engine;
pub mod index;
pub mod query;
pub mod row;
pub mod segment;
pub mod sketch;

pub use agg::{AggSpec, AggValue};
pub use dictionary::Dictionary;
pub use engine::DataNode;
pub use index::{IncrementalIndex, LegacyIndex, OakIndex};
pub use row::{DimValue, InputRow, Schema};
pub use segment::Segment;
