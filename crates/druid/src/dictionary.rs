//! Concurrent string → codeword dictionaries.
//!
//! One dictionary per string dimension: assigns a stable `u32` codeword to
//! each distinct value, with reverse lookup for query results. These are
//! the "auxiliary dynamic dictionaries" of §6 and stay on the (real) heap —
//! the paper keeps them on-heap too.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

#[derive(Default)]
struct Inner {
    forward: HashMap<Arc<str>, u32>,
    reverse: Vec<Arc<str>>,
}

/// A concurrent, append-only value dictionary.
#[derive(Default)]
pub struct Dictionary {
    inner: RwLock<Inner>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the codeword for `value`, assigning the next one if new.
    pub fn encode(&self, value: &str) -> u32 {
        if let Some(&code) = self.inner.read().forward.get(value) {
            return code;
        }
        let mut g = self.inner.write();
        if let Some(&code) = g.forward.get(value) {
            return code; // raced with another encoder
        }
        let code = g.reverse.len() as u32;
        let s: Arc<str> = Arc::from(value);
        g.reverse.push(s.clone());
        g.forward.insert(s, code);
        code
    }

    /// Reverse lookup.
    pub fn decode(&self, code: u32) -> Option<Arc<str>> {
        self.inner.read().reverse.get(code as usize).cloned()
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.inner.read().reverse.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate on-heap footprint in bytes (for Figure 5c accounting).
    pub fn footprint_bytes(&self) -> usize {
        let g = self.inner.read();
        g.reverse
            .iter()
            .map(|s| oak_gcheap::layout::object(16) + oak_gcheap::layout::byte_array(s.len()))
            .sum::<usize>()
            + g.reverse.len() * 2 * oak_gcheap::layout::REF_SIZE
    }
}

impl std::fmt::Debug for Dictionary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dictionary")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_codewords() {
        let d = Dictionary::new();
        let a = d.encode("alpha");
        let b = d.encode("beta");
        assert_ne!(a, b);
        assert_eq!(d.encode("alpha"), a);
        assert_eq!(d.decode(a).unwrap().as_ref(), "alpha");
        assert_eq!(d.decode(b).unwrap().as_ref(), "beta");
        assert_eq!(d.len(), 2);
        assert!(d.decode(99).is_none());
    }

    #[test]
    fn concurrent_encoding_is_consistent() {
        let d = Arc::new(Dictionary::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let d = d.clone();
            handles.push(std::thread::spawn(move || {
                let mut codes = Vec::new();
                for i in 0..200 {
                    codes.push((i, d.encode(&format!("value-{i}"))));
                }
                codes
            }));
        }
        let all: Vec<Vec<(i32, u32)>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Same value → same codeword across all threads.
        for i in 0..200usize {
            let codes: Vec<u32> = all.iter().map(|v| v[i].1).collect();
            assert!(codes.windows(2).all(|w| w[0] == w[1]), "value {i}");
        }
        assert_eq!(d.len(), 200);
    }
}
