//! Approximate sketches for rollup aggregators.
//!
//! "Complex aggregates (e.g., unique count and quantiles) are embodied
//! through sketches – compact data structures for approximate statistical
//! queries" (§6). Both sketches here operate **in place on byte slices**,
//! so they can live inside Oak's off-heap values and be updated atomically
//! by a single `compute` lambda.

pub mod hll {
    //! HyperLogLog unique-count sketch with 2^10 single-byte registers
    //! (fixed 1024-byte state; standard bias correction).

    /// log2 of the register count.
    pub const P: u32 = 10;
    /// Number of registers / state size in bytes.
    pub const STATE_SIZE: usize = 1 << P;

    /// Initializes an HLL state in `out` (zeroed registers).
    pub fn init(out: &mut [u8]) {
        debug_assert_eq!(out.len(), STATE_SIZE);
        out.fill(0);
    }

    fn hash64(x: u64) -> u64 {
        // splitmix64 finalizer — good avalanche for HLL purposes.
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Folds one item (by 64-bit identity) into the state.
    pub fn add(state: &mut [u8], item: u64) {
        let h = hash64(item);
        let idx = (h >> (64 - P)) as usize;
        let rest = h << P;
        let rank = (rest.leading_zeros() + 1).min(64 - P) as u8;
        if state[idx] < rank {
            state[idx] = rank;
        }
    }

    /// Estimates the number of distinct items folded into `state`.
    pub fn estimate(state: &[u8]) -> f64 {
        let m = STATE_SIZE as f64;
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let mut sum = 0.0;
        let mut zeros = 0usize;
        for &r in state {
            sum += 1.0 / (1u64 << r) as f64;
            if r == 0 {
                zeros += 1;
            }
        }
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m && zeros > 0 {
            // Small-range (linear counting) correction.
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }

    /// Merges `other` into `state` (register-wise max).
    pub fn merge(state: &mut [u8], other: &[u8]) {
        for (a, &b) in state.iter_mut().zip(other) {
            if *a < b {
                *a = b;
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn estimates_within_tolerance() {
            for &n in &[100u64, 1_000, 50_000] {
                let mut st = vec![0u8; STATE_SIZE];
                init(&mut st);
                for i in 0..n {
                    add(&mut st, i.wrapping_mul(0x9E3779B97F4A7C15));
                }
                let est = estimate(&st);
                let err = (est - n as f64).abs() / n as f64;
                // Standard error for m=1024 is ~3.25%; allow 4σ.
                assert!(err < 0.13, "n={n} est={est} err={err}");
            }
        }

        #[test]
        fn duplicates_do_not_inflate() {
            let mut st = vec![0u8; STATE_SIZE];
            init(&mut st);
            for _ in 0..10_000 {
                add(&mut st, 42);
            }
            assert!(estimate(&st) < 3.0);
        }

        #[test]
        fn merge_equals_union() {
            let (mut a, mut b, mut u) = (
                vec![0u8; STATE_SIZE],
                vec![0u8; STATE_SIZE],
                vec![0u8; STATE_SIZE],
            );
            for i in 0..5_000u64 {
                add(&mut a, i);
                add(&mut u, i);
            }
            for i in 2_500..7_500u64 {
                add(&mut b, i);
                add(&mut u, i);
            }
            merge(&mut a, &b);
            assert_eq!(a, u, "merge must equal the sketch of the union");
        }
    }
}

pub mod quantile {
    //! Fixed-size reservoir-sampling quantile sketch.
    //!
    //! State layout: `count: u64 | reservoir: [f64; K]` (little-endian),
    //! 8 + 8·K bytes. Reservoir sampling keeps a uniform sample, so
    //! quantile queries are approximate with error shrinking in √K.

    /// Reservoir capacity.
    pub const K: usize = 128;
    /// Fixed state size in bytes.
    pub const STATE_SIZE: usize = 8 + 8 * K;

    fn read_count(state: &[u8]) -> u64 {
        u64::from_le_bytes(state[..8].try_into().unwrap())
    }

    fn write_count(state: &mut [u8], c: u64) {
        state[..8].copy_from_slice(&c.to_le_bytes());
    }

    fn slot(state: &[u8], i: usize) -> f64 {
        f64::from_le_bytes(state[8 + 8 * i..16 + 8 * i].try_into().unwrap())
    }

    fn set_slot(state: &mut [u8], i: usize, v: f64) {
        state[8 + 8 * i..16 + 8 * i].copy_from_slice(&v.to_le_bytes());
    }

    /// Initializes an empty sketch.
    pub fn init(out: &mut [u8]) {
        debug_assert_eq!(out.len(), STATE_SIZE);
        out.fill(0);
    }

    /// Folds a sample into the sketch. Randomness is derived
    /// deterministically from the running count (reproducible runs).
    pub fn add(state: &mut [u8], value: f64) {
        let n = read_count(state);
        if (n as usize) < K {
            set_slot(state, n as usize, value);
        } else {
            // Deterministic pseudo-random replacement index in [0, n].
            let mut z = (n + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z ^= z >> 29;
            z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            let j = z % (n + 1);
            if (j as usize) < K {
                set_slot(state, j as usize, value);
            }
        }
        write_count(state, n + 1);
    }

    /// Approximate `q`-quantile (0 ≤ q ≤ 1); `None` for an empty sketch.
    pub fn query(state: &[u8], q: f64) -> Option<f64> {
        let n = read_count(state);
        if n == 0 {
            return None;
        }
        let filled = (n as usize).min(K);
        let mut sample: Vec<f64> = (0..filled).map(|i| slot(state, i)).collect();
        sample.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((q * (filled - 1) as f64).round() as usize).min(filled - 1);
        Some(sample[idx])
    }

    /// Total samples folded in.
    pub fn count(state: &[u8]) -> u64 {
        read_count(state)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn exact_when_under_capacity() {
            let mut st = vec![0u8; STATE_SIZE];
            init(&mut st);
            for i in 0..100 {
                add(&mut st, i as f64);
            }
            assert_eq!(count(&st), 100);
            assert_eq!(query(&st, 0.0), Some(0.0));
            assert_eq!(query(&st, 1.0), Some(99.0));
            let med = query(&st, 0.5).unwrap();
            assert!((med - 49.5).abs() <= 1.0);
        }

        #[test]
        fn approximate_over_capacity() {
            let mut st = vec![0u8; STATE_SIZE];
            init(&mut st);
            for i in 0..100_000 {
                add(&mut st, i as f64);
            }
            assert_eq!(count(&st), 100_000);
            let med = query(&st, 0.5).unwrap();
            // Reservoir of 128: generous tolerance (±15% of the range).
            assert!((med - 50_000.0).abs() < 15_000.0, "median {med}");
            let p99 = query(&st, 0.99).unwrap();
            assert!(p99 > 80_000.0, "p99 {p99}");
        }

        #[test]
        fn empty_sketch_has_no_quantiles() {
            let mut st = vec![0u8; STATE_SIZE];
            init(&mut st);
            assert_eq!(query(&st, 0.5), None);
        }
    }
}
