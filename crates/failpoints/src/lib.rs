//! # oak-failpoints — deterministic fault injection for Oak
//!
//! A `fail_point!("pool/alloc")`-style macro backed by a registry of named
//! sites. Each site can be configured with an `Action` (return an injected
//! error, panic, yield the thread N times, or sleep) and a `FirePolicy`
//! deciding *which* hits of the site trigger the action. Schedules derived
//! from a seed (`Schedule::generate`) make whole fault runs reproducible:
//! the same seed always injects the same faults at the same hit counts.
//!
//! ## Zero cost when disabled
//!
//! All registry machinery is compiled only under the `failpoints` feature.
//! Without it, [`eval`] is an empty `#[inline(always)]` function returning
//! `false`, so `fail_point!` folds to nothing in release builds — call sites
//! carry no branch, no atomic, no string.
//!
//! ## Usage in library code
//!
//! ```ignore
//! // Side effects only (panic / yield / delay):
//! oak_failpoints::fail_point!("chunk/cas-value");
//! // Early-return injection (fires when the site is configured with
//! // `Action::ReturnErr`):
//! oak_failpoints::fail_point!("pool/alloc", Err(AllocError::Injected));
//! ```
//!
//! ## Usage in tests
//!
//! Tests configuring the global registry must serialize through
//! `scenario`, which takes a process-wide lock and clears all sites on
//! both entry and drop:
//!
//! ```
//! # #[cfg(feature = "failpoints")] {
//! use oak_failpoints::{scenario, configure, Action, FirePolicy};
//! let _s = scenario();
//! configure("pool/alloc", Action::ReturnErr, FirePolicy::OnHits(vec![2]));
//! # }
//! ```

#![warn(missing_docs)]

/// Description of one failpoint site, used by schedule generation.
///
/// `errorable` marks sites whose `fail_point!` invocation carries a
/// return-expression — only those may be scheduled with
/// `Action::ReturnErr`; at other sites the action would silently do
/// nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteSpec {
    /// Canonical site name, e.g. `"pool/alloc"`.
    pub name: &'static str,
    /// Whether the site supports return-error injection.
    pub errorable: bool,
}

impl SiteSpec {
    /// A site supporting return-error injection.
    pub const fn errorable(name: &'static str) -> Self {
        SiteSpec {
            name,
            errorable: true,
        }
    }

    /// A side-effect-only site (yield / delay / panic).
    pub const fn passive(name: &'static str) -> Self {
        SiteSpec {
            name,
            errorable: false,
        }
    }
}

/// Evaluates the named failpoint.
///
/// Returns `true` when a configured `Action::ReturnErr` fires, telling
/// the `fail_point!` macro to take its early-return arm. Side-effect
/// actions (panic, yield, delay) are performed before returning `false`.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn eval(_name: &str) -> bool {
    false
}

/// Declares a failpoint site.
///
/// * `fail_point!("site")` — side effects only (panic / yield / delay).
/// * `fail_point!("site", expr)` — additionally supports
///   `Action::ReturnErr`: when it fires, the enclosing function returns
///   `expr`.
///
/// Compiles to a true no-op when the `failpoints` feature is disabled.
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {
        let _ = $crate::eval($name);
    };
    ($name:expr, $ret:expr) => {
        if $crate::eval($name) {
            return $ret;
        }
    };
}

/// Evaluates the named sync point (see [`sync_point!`]).
///
/// Inactive implementation: compiled when the `failpoints` feature is off,
/// so instrumented call sites fold to nothing.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn eval_sync(_name: &str) {}

/// Declares a named *sync point* — a decision site a deterministic
/// interleaving schedule can gate on.
///
/// A thread reaching a sync point blocks until the installed
/// `SyncSchedule` (exported under the `failpoints` feature) permits it
/// to proceed; threads
/// with no registered role, and sites not mentioned in the remainder of
/// the schedule, pass through immediately. Compiles to a true no-op when
/// the `failpoints` feature is disabled.
#[macro_export]
macro_rules! sync_point {
    ($name:expr) => {
        $crate::eval_sync($name);
    };
}

#[cfg(feature = "failpoints")]
mod active {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

    use super::SiteSpec;

    /// What a firing failpoint does.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum Action {
        /// Make `fail_point!(name, expr)` return `expr` from the enclosing
        /// function. At side-effect-only sites this action does nothing.
        ReturnErr,
        /// Panic with a message naming the site.
        Panic,
        /// Call `std::thread::yield_now()` the given number of times —
        /// perturbs interleavings without changing outcomes.
        Yield(u32),
        /// Sleep for the given number of microseconds.
        DelayMicros(u64),
    }

    /// Which hits of a site trigger its action. Hit counts are 1-based and
    /// reset by [`configure`] and [`clear`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum FirePolicy {
        /// Every hit fires.
        Always,
        /// Only the first `n` hits fire.
        Times(u64),
        /// Every `n`-th hit fires (n ≥ 1).
        EveryN(u64),
        /// Exactly the listed 1-based hit counts fire — the deterministic
        /// schedule primitive.
        OnHits(Vec<u64>),
    }

    impl FirePolicy {
        fn fires(&self, hit: u64) -> bool {
            match self {
                FirePolicy::Always => true,
                FirePolicy::Times(n) => hit <= *n,
                FirePolicy::EveryN(n) => *n >= 1 && hit.is_multiple_of(*n),
                FirePolicy::OnHits(hits) => hits.contains(&hit),
            }
        }
    }

    #[derive(Debug)]
    struct SiteEntry {
        action: Option<(Action, FirePolicy)>,
        hits: u64,
        fired: u64,
    }

    #[derive(Default)]
    struct Registry {
        sites: Mutex<HashMap<String, SiteEntry>>,
    }

    fn registry() -> &'static Registry {
        static REGISTRY: OnceLock<Registry> = OnceLock::new();
        REGISTRY.get_or_init(Registry::default)
    }

    fn lock_sites() -> MutexGuard<'static, HashMap<String, SiteEntry>> {
        registry()
            .sites
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Total count of injected faults that actually fired, process-wide.
    static TOTAL_FIRED: AtomicU64 = AtomicU64::new(0);

    /// See the crate-level docs; this is the active implementation.
    pub fn eval(name: &str) -> bool {
        let decided = {
            let mut sites = lock_sites();
            let entry = sites.entry(name.to_string()).or_insert(SiteEntry {
                action: None,
                hits: 0,
                fired: 0,
            });
            entry.hits += 1;
            match &entry.action {
                Some((action, policy)) if policy.fires(entry.hits) => {
                    entry.fired += 1;
                    Some(action.clone())
                }
                _ => None,
            }
        };
        let Some(action) = decided else {
            return false;
        };
        TOTAL_FIRED.fetch_add(1, Ordering::Relaxed);
        match action {
            Action::ReturnErr => true,
            Action::Panic => panic!("failpoint '{name}' injected panic"),
            Action::Yield(n) => {
                for _ in 0..n {
                    std::thread::yield_now();
                }
                false
            }
            Action::DelayMicros(us) => {
                std::thread::sleep(std::time::Duration::from_micros(us));
                false
            }
        }
    }

    /// Configures `name` with an action and fire policy, resetting its hit
    /// and fired counters.
    pub fn configure(name: &str, action: Action, policy: FirePolicy) {
        let mut sites = lock_sites();
        sites.insert(
            name.to_string(),
            SiteEntry {
                action: Some((action, policy)),
                hits: 0,
                fired: 0,
            },
        );
    }

    /// Removes the configuration (and counters) of one site.
    pub fn deconfigure(name: &str) {
        lock_sites().remove(name);
    }

    /// Removes all site configurations and counters.
    pub fn clear() {
        lock_sites().clear();
    }

    /// Number of times `name` has been evaluated since it was configured
    /// (or first hit).
    pub fn hits(name: &str) -> u64 {
        lock_sites().get(name).map_or(0, |e| e.hits)
    }

    /// Number of times `name`'s action has fired.
    pub fn fired(name: &str) -> u64 {
        lock_sites().get(name).map_or(0, |e| e.fired)
    }

    /// Process-wide count of fired injections (all sites, ever).
    pub fn total_fired() -> u64 {
        TOTAL_FIRED.load(Ordering::Relaxed)
    }

    /// RAII guard serializing tests that use the global registry. Sites are
    /// cleared both when the scenario starts and when it drops.
    pub struct Scenario {
        _guard: MutexGuard<'static, ()>,
    }

    /// Enters an exclusive fault-injection scenario.
    ///
    /// Tests touching the registry must hold one of these: the registry is
    /// process-global, and Rust runs tests concurrently.
    pub fn scenario() -> Scenario {
        static SCENARIO: Mutex<()> = Mutex::new(());
        let guard = SCENARIO.lock().unwrap_or_else(PoisonError::into_inner);
        clear();
        Scenario { _guard: guard }
    }

    impl Drop for Scenario {
        fn drop(&mut self) {
            clear();
        }
    }

    /// SplitMix64: a tiny, high-quality deterministic PRNG. Used for
    /// schedule generation and exported so test harnesses can derive their
    /// workloads from the same seed.
    #[derive(Debug, Clone)]
    pub struct SplitMix64(u64);

    impl SplitMix64 {
        /// Seeds the generator.
        pub fn new(seed: u64) -> Self {
            SplitMix64(seed)
        }

        /// Next 64 pseudo-random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform value in `[lo, hi]` (inclusive).
        pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
            lo + self.below(hi - lo + 1)
        }
    }

    /// One configured site of a [`Schedule`].
    #[derive(Debug, Clone)]
    pub struct ScheduleEntry {
        /// Site name.
        pub site: &'static str,
        /// Action to inject.
        pub action: Action,
        /// When it fires.
        pub policy: FirePolicy,
    }

    /// A deterministic per-seed fault schedule over a set of sites.
    #[derive(Debug, Clone)]
    pub struct Schedule {
        /// The seed this schedule was generated from.
        pub seed: u64,
        /// Configured sites.
        pub entries: Vec<ScheduleEntry>,
    }

    impl Schedule {
        /// Generates the schedule for `seed` over `sites`.
        ///
        /// Each site is independently configured with probability ~1/2.
        /// Errorable sites draw from {return-error, yield, delay}; passive
        /// sites from {yield, delay}. Fire points are a small set of exact
        /// hit counts in `[1, 64]`, or — for perturbations only — an
        /// every-N cadence; both exactly reproducible for a given seed.
        /// `Action::Panic` is deliberately never scheduled: random internal
        /// panics are not recoverable in general and are exercised by
        /// dedicated tests instead.
        ///
        /// Error injections are always *finite* (bounded hit sets, never
        /// `EveryN`): the map's retry loops are lock-free only under the
        /// assumption that a failed publish/CAS implies another thread made
        /// progress, and an unbounded refusal stream voids it. Concretely,
        /// `doPut` hits `chunk/publish` twice per retry (link + value
        /// publish), so `ReturnErr` with `EveryN(2)` phase-locks onto the
        /// value publish and the operation livelocks forever. Delays and
        /// yields may recur indefinitely — they perturb timing but cannot
        /// block progress.
        pub fn generate(seed: u64, sites: &[SiteSpec]) -> Schedule {
            let mut rng = SplitMix64::new(seed ^ 0xA076_1D64_78BD_642F);
            let mut entries = Vec::new();
            for site in sites {
                if rng.below(2) == 0 {
                    continue;
                }
                let action = match (site.errorable, rng.below(10)) {
                    (true, 0..=3) => Action::ReturnErr,
                    (_, 4..=6) => Action::DelayMicros(rng.range(1, 100)),
                    _ => Action::Yield(rng.range(1, 4) as u32),
                };
                let policy = if action != Action::ReturnErr && rng.below(3) == 0 {
                    FirePolicy::EveryN(rng.range(2, 8))
                } else {
                    let n = rng.range(1, 3) as usize;
                    let mut hits: Vec<u64> = (0..n).map(|_| rng.range(1, 64)).collect();
                    hits.sort_unstable();
                    hits.dedup();
                    FirePolicy::OnHits(hits)
                };
                entries.push(ScheduleEntry {
                    site: site.name,
                    action,
                    policy,
                });
            }
            Schedule { seed, entries }
        }

        /// Installs every entry into the global registry.
        pub fn install(&self) {
            for e in &self.entries {
                configure(e.site, e.action.clone(), e.policy.clone());
            }
        }
    }
}

#[cfg(feature = "failpoints")]
mod sync {
    //! Deterministic interleaving engine: named sync points + an explicit
    //! thread schedule.
    //!
    //! A [`SyncSchedule`] is an ordered list of `(role, site)` steps. Each
    //! participating thread registers a *role* (an arbitrary short name)
    //! via [`sync_role`]; when it reaches a `sync_point!`, it blocks until
    //! its `(role, site)` pair is at the head of the remaining schedule,
    //! then consumes that step and proceeds. Pairs that do not appear in
    //! the remaining schedule — and threads with no role — pass through
    //! without blocking, so a schedule only needs to name the hits it
    //! cares about.
    //!
    //! Deadlock safety: a waiter that times out marks the whole schedule
    //! *abandoned*; every sync point then becomes a no-op and the test can
    //! fail loudly via [`SyncSession::completed`].

    use std::cell::RefCell;
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
    use std::time::Duration;

    /// One step of a [`SyncSchedule`]: the named `role` must be the thread
    /// that performs the next hit of `site`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SyncStep {
        /// Thread role (registered with [`sync_role`]).
        pub role: String,
        /// Sync-point site name, e.g. `"iter/descend-step"`.
        pub site: String,
    }

    /// An explicit thread interleaving: the ordered `(role, site)` steps
    /// that scheduled threads must perform one at a time.
    #[derive(Debug, Clone, Default)]
    pub struct SyncSchedule {
        /// Ordered steps.
        pub steps: Vec<SyncStep>,
    }

    impl SyncSchedule {
        /// An empty schedule (every sync point passes through).
        pub fn new() -> Self {
            SyncSchedule::default()
        }

        /// Appends one step (builder style).
        pub fn step(mut self, role: &str, site: &str) -> Self {
            self.steps.push(SyncStep {
                role: role.to_string(),
                site: site.to_string(),
            });
            self
        }

        /// Parses the schedule DSL: steps separated by `->`, `;` or
        /// newlines, each `role@site` with an optional `*N` repetition.
        /// `#` starts a comment running to the end of the line.
        ///
        /// ```
        /// # use oak_failpoints::SyncSchedule;
        /// let s = SyncSchedule::parse(
        ///     "scan@iter/descend-step*2 -> main@test/go ; scan@iter/descend-step",
        /// )
        /// .unwrap();
        /// assert_eq!(s.steps.len(), 4);
        /// ```
        pub fn parse(dsl: &str) -> Result<SyncSchedule, String> {
            let mut steps = Vec::new();
            for line in dsl.lines() {
                let line = line.split('#').next().unwrap_or("");
                for tok in line.split(';').flat_map(|s| s.split("->")) {
                    let tok = tok.trim();
                    if tok.is_empty() {
                        continue;
                    }
                    let (pair, reps) = match tok.rsplit_once('*') {
                        Some((p, n)) => {
                            let reps: usize = n
                                .trim()
                                .parse()
                                .map_err(|_| format!("bad repetition in step '{tok}'"))?;
                            (p.trim(), reps)
                        }
                        None => (tok, 1),
                    };
                    let (role, site) = pair
                        .split_once('@')
                        .ok_or_else(|| format!("step '{tok}' is not 'role@site'"))?;
                    let (role, site) = (role.trim(), site.trim());
                    if role.is_empty() || site.is_empty() {
                        return Err(format!("step '{tok}' has an empty role or site"));
                    }
                    for _ in 0..reps {
                        steps.push(SyncStep {
                            role: role.to_string(),
                            site: site.to_string(),
                        });
                    }
                }
            }
            Ok(SyncSchedule { steps })
        }
    }

    struct EngineState {
        steps: VecDeque<SyncStep>,
        abandoned: bool,
        timeout: Duration,
    }

    struct Controller {
        state: Mutex<Option<EngineState>>,
        cv: Condvar,
    }

    fn controller() -> &'static Controller {
        static CTL: OnceLock<Controller> = OnceLock::new();
        CTL.get_or_init(|| Controller {
            state: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    /// Fast-path gate: a single relaxed load when no schedule is installed.
    static SYNC_ACTIVE: AtomicBool = AtomicBool::new(false);

    thread_local! {
        static ROLE: RefCell<Option<String>> = const { RefCell::new(None) };
    }

    /// RAII guard for a thread's schedule role; restores the previous role
    /// (usually none) on drop.
    pub struct SyncRole {
        prev: Option<String>,
    }

    /// Registers the calling thread under `role` for the installed
    /// [`SyncSchedule`]. Threads without a role never block at sync points.
    pub fn sync_role(role: &str) -> SyncRole {
        let prev = ROLE.with(|r| r.replace(Some(role.to_string())));
        SyncRole { prev }
    }

    impl Drop for SyncRole {
        fn drop(&mut self) {
            let prev = self.prev.take();
            ROLE.with(|r| *r.borrow_mut() = prev);
        }
    }

    fn lock_state() -> MutexGuard<'static, Option<EngineState>> {
        controller()
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// See [`sync_point!`]; this is the active implementation.
    pub fn eval_sync(name: &str) {
        if !SYNC_ACTIVE.load(Ordering::Acquire) {
            return;
        }
        let Some(role) = ROLE.with(|r| r.borrow().clone()) else {
            return;
        };
        let c = controller();
        let mut g = lock_state();
        loop {
            let Some(st) = g.as_mut() else { return };
            if st.abandoned {
                return;
            }
            if !st.steps.iter().any(|s| s.role == role && s.site == name) {
                return;
            }
            let head = st.steps.front().expect("non-empty: contains our step");
            if head.role == role && head.site == name {
                st.steps.pop_front();
                c.cv.notify_all();
                return;
            }
            let timeout = st.timeout;
            let (ng, res) =
                c.cv.wait_timeout(g, timeout)
                    .unwrap_or_else(PoisonError::into_inner);
            g = ng;
            if res.timed_out() {
                if let Some(st) = g.as_mut() {
                    st.abandoned = true;
                }
                c.cv.notify_all();
                return;
            }
        }
    }

    /// RAII session for one installed [`SyncSchedule`]. Sessions serialize
    /// process-wide (the engine is global); dropping the session clears the
    /// schedule and releases any stragglers.
    pub struct SyncSession {
        _guard: MutexGuard<'static, ()>,
    }

    /// Installs `schedule` with the default 5-second waiter timeout.
    pub fn sync_scenario(schedule: SyncSchedule) -> SyncSession {
        sync_scenario_with_timeout(schedule, Duration::from_secs(5))
    }

    /// Installs `schedule`; a thread blocked at a sync point for longer
    /// than `timeout` abandons the whole schedule (deadlock safety — the
    /// test should then fail via [`SyncSession::completed`]).
    pub fn sync_scenario_with_timeout(schedule: SyncSchedule, timeout: Duration) -> SyncSession {
        static SESSION: Mutex<()> = Mutex::new(());
        let guard = SESSION.lock().unwrap_or_else(PoisonError::into_inner);
        {
            let mut g = lock_state();
            *g = Some(EngineState {
                steps: schedule.steps.into(),
                abandoned: false,
                timeout,
            });
        }
        SYNC_ACTIVE.store(true, Ordering::Release);
        SyncSession { _guard: guard }
    }

    impl SyncSession {
        /// Steps not yet consumed.
        pub fn remaining(&self) -> Vec<SyncStep> {
            lock_state()
                .as_ref()
                .map(|st| st.steps.iter().cloned().collect())
                .unwrap_or_default()
        }

        /// Whether a waiter timed out and abandoned the schedule.
        pub fn abandoned(&self) -> bool {
            lock_state().as_ref().is_some_and(|st| st.abandoned)
        }

        /// Whether every step was consumed (and nothing timed out).
        pub fn completed(&self) -> bool {
            lock_state()
                .as_ref()
                .is_some_and(|st| st.steps.is_empty() && !st.abandoned)
        }
    }

    impl Drop for SyncSession {
        fn drop(&mut self) {
            SYNC_ACTIVE.store(false, Ordering::Release);
            let mut g = lock_state();
            *g = None;
            controller().cv.notify_all();
        }
    }
}

#[cfg(feature = "failpoints")]
pub use active::{
    clear, configure, deconfigure, eval, fired, hits, scenario, total_fired, Action, FirePolicy,
    Scenario, Schedule, ScheduleEntry, SplitMix64,
};

#[cfg(feature = "failpoints")]
pub use sync::{
    eval_sync, sync_role, sync_scenario, sync_scenario_with_timeout, SyncRole, SyncSchedule,
    SyncSession, SyncStep,
};

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn unconfigured_site_never_fires() {
        let _s = scenario();
        assert!(!eval("t/none"));
        assert_eq!(hits("t/none"), 1);
        assert_eq!(fired("t/none"), 0);
    }

    #[test]
    fn on_hits_fires_exactly_there() {
        let _s = scenario();
        configure("t/oh", Action::ReturnErr, FirePolicy::OnHits(vec![2, 4]));
        let fires: Vec<bool> = (0..5).map(|_| eval("t/oh")).collect();
        assert_eq!(fires, [false, true, false, true, false]);
        assert_eq!(fired("t/oh"), 2);
    }

    #[test]
    fn every_n_and_times() {
        let _s = scenario();
        configure("t/en", Action::ReturnErr, FirePolicy::EveryN(3));
        let fires: Vec<bool> = (0..6).map(|_| eval("t/en")).collect();
        assert_eq!(fires, [false, false, true, false, false, true]);
        configure("t/tm", Action::ReturnErr, FirePolicy::Times(2));
        let fires: Vec<bool> = (0..4).map(|_| eval("t/tm")).collect();
        assert_eq!(fires, [true, true, false, false]);
    }

    #[test]
    fn panic_action_panics_with_site_name() {
        let _s = scenario();
        configure("t/boom", Action::Panic, FirePolicy::Always);
        let err = std::panic::catch_unwind(|| eval("t/boom")).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("t/boom"));
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let sites = [
            SiteSpec::errorable("a"),
            SiteSpec::passive("b"),
            SiteSpec::errorable("c"),
            SiteSpec::passive("d"),
        ];
        for seed in 0..50u64 {
            let s1 = Schedule::generate(seed, &sites);
            let s2 = Schedule::generate(seed, &sites);
            assert_eq!(s1.entries.len(), s2.entries.len());
            for (a, b) in s1.entries.iter().zip(&s2.entries) {
                assert_eq!(a.site, b.site);
                assert_eq!(a.action, b.action);
                assert_eq!(a.policy, b.policy);
            }
            // Return-error only lands on errorable sites.
            for e in &s1.entries {
                if e.action == Action::ReturnErr {
                    assert!(e.site == "a" || e.site == "c");
                }
            }
        }
        // Different seeds must (overwhelmingly) give different schedules.
        let all: Vec<_> = (0..50u64)
            .map(|s| format!("{:?}", Schedule::generate(s, &sites).entries))
            .collect();
        let mut uniq = all.clone();
        uniq.sort();
        uniq.dedup();
        assert!(uniq.len() > 25, "schedules barely vary across seeds");
    }

    #[test]
    fn generated_error_injections_are_finite() {
        // Regression (corpus livelock): `doPut` hits `chunk/publish` twice
        // per retry, so a `ReturnErr` entry with `EveryN(2)` phase-locks
        // onto the same publish call every iteration and the operation
        // never terminates. Generated schedules must keep every error
        // injection on a bounded hit set; unbounded cadences are reserved
        // for progress-neutral perturbations (yield/delay).
        let sites = [
            SiteSpec::errorable("a"),
            SiteSpec::passive("b"),
            SiteSpec::errorable("c"),
            SiteSpec::passive("d"),
            SiteSpec::errorable("e"),
        ];
        for seed in 0..500u64 {
            for e in &Schedule::generate(seed, &sites).entries {
                if e.action == Action::ReturnErr {
                    assert!(
                        matches!(e.policy, FirePolicy::OnHits(_)),
                        "seed {seed}: unbounded error injection at {}: {:?}",
                        e.site,
                        e.policy
                    );
                }
            }
        }
    }

    #[test]
    fn scenario_clears_on_drop() {
        {
            let _s = scenario();
            configure("t/tmp", Action::ReturnErr, FirePolicy::Always);
            assert!(eval("t/tmp"));
        }
        let _s = scenario();
        assert!(!eval("t/tmp"));
    }

    #[test]
    fn sync_dsl_parses_steps_reps_and_comments() {
        let s = SyncSchedule::parse(
            "a@x/one*2 -> b@y/two # trailing comment\n # whole-line comment\n a@x/one ; b@y/two",
        )
        .unwrap();
        let got: Vec<(&str, &str)> = s
            .steps
            .iter()
            .map(|st| (st.role.as_str(), st.site.as_str()))
            .collect();
        assert_eq!(
            got,
            [
                ("a", "x/one"),
                ("a", "x/one"),
                ("b", "y/two"),
                ("a", "x/one"),
                ("b", "y/two")
            ]
        );
        assert!(SyncSchedule::parse("nosite").is_err());
        assert!(SyncSchedule::parse("a@s*zz").is_err());
        assert!(SyncSchedule::parse("@s").is_err());
    }

    #[test]
    fn sync_points_pass_through_without_role_or_schedule() {
        // No schedule installed: free pass.
        eval_sync("t/free");
        let session = sync_scenario(SyncSchedule::parse("w@t/gated").unwrap());
        // Roleless thread: free pass even at a scheduled site.
        eval_sync("t/gated");
        assert_eq!(session.remaining().len(), 1);
        // Role whose (role, site) is not in the schedule: free pass.
        let _r = sync_role("other");
        eval_sync("t/gated");
        eval_sync("t/unrelated");
        assert_eq!(session.remaining().len(), 1);
    }

    #[test]
    fn sync_schedule_orders_two_threads() {
        // An action is ordered by bracketing it between two gates of the
        // same role: the thread holds the turn from consuming its `enter`
        // step until it consumes its `exit` step.
        let session = sync_scenario(
            SyncSchedule::parse(
                "a@t/enter -> a@t/exit -> b@t/enter -> b@t/exit -> \
             a@t/enter -> a@t/exit -> b@t/enter -> b@t/exit",
            )
            .unwrap(),
        );
        let log = std::sync::Arc::new(Mutex::new(Vec::new()));
        let mk = |role: &'static str, log: std::sync::Arc<Mutex<Vec<&'static str>>>| {
            std::thread::spawn(move || {
                let _r = sync_role(role);
                for _ in 0..2 {
                    eval_sync("t/enter");
                    log.lock().unwrap().push(role);
                    eval_sync("t/exit");
                }
            })
        };
        // Start b first to prove the schedule (not spawn order) decides.
        let tb = mk("b", log.clone());
        std::thread::sleep(std::time::Duration::from_millis(10));
        let ta = mk("a", log.clone());
        ta.join().unwrap();
        tb.join().unwrap();
        assert!(session.completed(), "remaining: {:?}", session.remaining());
        assert_eq!(*log.lock().unwrap(), ["a", "b", "a", "b"]);
    }

    #[test]
    fn sync_timeout_abandons_instead_of_deadlocking() {
        let session = sync_scenario_with_timeout(
            // Head step never happens: role "ghost" does not exist.
            SyncSchedule::parse("ghost@t/never -> w@t/wait").unwrap(),
            std::time::Duration::from_millis(50),
        );
        let t = std::thread::spawn(|| {
            let _r = sync_role("w");
            eval_sync("t/wait"); // blocks, times out, abandons
            eval_sync("t/wait"); // abandoned: passes straight through
        });
        t.join().unwrap();
        assert!(session.abandoned());
        assert!(!session.completed());
    }
}
