//! The managed heap: registry, budget, and stop-the-world mark/sweep.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

use crate::model::{HeapModel, ObjToken};
use crate::stats::GcStats;

/// Number of registry shards (keeps registration cheap under concurrency).
const SHARDS: usize = 16;

const STATE_EMPTY: u8 = 0;
const STATE_LIVE: u8 = 1;
const STATE_DEAD: u8 = 2;

/// Configuration for a [`ManagedHeap`].
#[derive(Debug, Clone)]
pub struct HeapConfig {
    /// Heap budget in bytes (the `-Xmx` analogue).
    pub capacity_bytes: u64,
    /// Occupancy fraction that triggers a collection. Real collectors start
    /// before the heap is completely full; 0.95 is a reasonable stand-in.
    pub trigger_ratio: f64,
    /// Number of passes over the live set per collection. 1 models a plain
    /// mark phase; higher values model costlier collectors (e.g. compaction).
    pub mark_passes: u32,
    /// Garbage volume that triggers a minor collection, modelling young-gen
    /// fills: real JVMs collect every few MB of allocation regardless of
    /// total occupancy, with cost proportional to the live set.
    pub young_bytes: u64,
    /// Fraction of the budget the *live* set may occupy before the heap
    /// declares OOM. Real collectors need substantial headroom to sustain
    /// allocation-heavy workloads (HotSpot's "GC overhead limit"); the Oak
    /// paper measures `Skiplist-OnHeap` capping below 40% raw-data
    /// utilization of its heap (§5.2), so 0.5 is a *generous* stand-in.
    pub oom_live_ratio: f64,
    /// Generational mode: young-fill triggers a *minor* collection that
    /// scans only the objects allocated since the last collection
    /// (survivors are promoted), as in HotSpot's young generation; major
    /// collections still run at the occupancy trigger. When off, every
    /// collection is a full mark/sweep (conservative: costlier per cycle).
    pub generational: bool,
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig {
            capacity_bytes: 1 << 30,
            trigger_ratio: 0.95,
            mark_passes: 1,
            young_bytes: (1 << 30) / 64,
            oom_live_ratio: 0.5,
            generational: false,
        }
    }
}

impl HeapConfig {
    /// A heap with the given budget and default tuning.
    pub fn with_capacity(capacity_bytes: u64) -> Self {
        HeapConfig {
            capacity_bytes,
            young_bytes: (capacity_bytes / 64).max(256 << 10),
            ..Default::default()
        }
    }
}

#[derive(Clone, Copy)]
struct Entry {
    size: u32,
    state: u8,
    /// In the young generation (generational mode): not yet examined by
    /// any collection.
    young: bool,
}

struct Slab {
    entries: Vec<Entry>,
    free_slots: Vec<u32>,
}

impl Slab {
    fn new() -> Self {
        Slab {
            entries: Vec::new(),
            free_slots: Vec::new(),
        }
    }

    fn insert(&mut self, size: u32) -> u32 {
        if let Some(slot) = self.free_slots.pop() {
            let e = &mut self.entries[slot as usize];
            debug_assert_eq!(e.state, STATE_EMPTY);
            *e = Entry {
                size,
                state: STATE_LIVE,
                young: true,
            };
            slot
        } else {
            self.entries.push(Entry {
                size,
                state: STATE_LIVE,
                young: true,
            });
            (self.entries.len() - 1) as u32
        }
    }
}

/// A simulated managed heap with a byte budget and stop-the-world
/// mark/sweep collection. See the crate docs for the model.
///
/// ```
/// use oak_gcheap::{HeapConfig, HeapModel, ManagedHeap};
///
/// let heap = ManagedHeap::new(HeapConfig::with_capacity(1 << 20));
/// let obj = heap.alloc(1024);      // register a simulated Java object
/// heap.free(obj);                  // it becomes garbage…
/// heap.collect_now();              // …and a STW collection sweeps it
/// let stats = heap.stats();
/// assert_eq!(stats.live_bytes, 0);
/// assert_eq!(stats.swept_bytes, 1024);
/// assert!(!heap.oom());
/// ```
pub struct ManagedHeap {
    config: HeapConfig,
    trigger_bytes: u64,
    live_limit: u64,
    shards: Box<[Mutex<Slab>]>,
    next_shard: AtomicUsize,

    /// live + garbage bytes; reset to live at each collection.
    occupancy: AtomicU64,
    live_bytes: AtomicU64,
    live_objects: AtomicU64,
    garbage_bytes: AtomicU64,
    /// Garbage still in the young generation (generational mode): drives
    /// the minor-collection trigger.
    young_garbage: AtomicU64,

    /// Mutators hold read; the collector holds write (the STW pause).
    gate: RwLock<()>,
    /// Serializes the collect decision.
    collector: Mutex<()>,

    /// Objects allocated since the last collection (the young set),
    /// drained by minor collections in generational mode.
    young: Mutex<Vec<ObjToken>>,
    collections: AtomicU64,
    minor_collections: AtomicU64,
    total_pause_ns: AtomicU64,
    max_pause_ns: AtomicU64,
    swept_bytes: AtomicU64,
    oom: AtomicBool,
}

impl ManagedHeap {
    /// Creates a heap with the given configuration.
    pub fn new(config: HeapConfig) -> Self {
        assert!(config.capacity_bytes > 0);
        assert!(config.trigger_ratio > 0.0 && config.trigger_ratio <= 1.0);
        assert!(config.oom_live_ratio > 0.0 && config.oom_live_ratio <= 1.0);
        let trigger_bytes = (config.capacity_bytes as f64 * config.trigger_ratio) as u64;
        let live_limit = (config.capacity_bytes as f64 * config.oom_live_ratio) as u64;
        ManagedHeap {
            trigger_bytes,
            live_limit,
            config,
            shards: (0..SHARDS).map(|_| Mutex::new(Slab::new())).collect(),
            next_shard: AtomicUsize::new(0),
            occupancy: AtomicU64::new(0),
            live_bytes: AtomicU64::new(0),
            live_objects: AtomicU64::new(0),
            garbage_bytes: AtomicU64::new(0),
            young_garbage: AtomicU64::new(0),
            gate: RwLock::new(()),
            collector: Mutex::new(()),
            young: Mutex::new(Vec::new()),
            collections: AtomicU64::new(0),
            minor_collections: AtomicU64::new(0),
            total_pause_ns: AtomicU64::new(0),
            max_pause_ns: AtomicU64::new(0),
            swept_bytes: AtomicU64::new(0),
            oom: AtomicBool::new(false),
        }
    }

    /// The heap configuration.
    pub fn config(&self) -> &HeapConfig {
        &self.config
    }

    /// Snapshot of collection statistics.
    pub fn stats(&self) -> GcStats {
        GcStats {
            capacity: self.config.capacity_bytes,
            live_bytes: self.live_bytes.load(Ordering::Relaxed),
            garbage_bytes: self.garbage_bytes.load(Ordering::Relaxed),
            live_objects: self.live_objects.load(Ordering::Relaxed),
            collections: self.collections.load(Ordering::Relaxed),
            minor_collections: self.minor_collections.load(Ordering::Relaxed),
            total_pause_ns: self.total_pause_ns.load(Ordering::Relaxed),
            max_pause_ns: self.max_pause_ns.load(Ordering::Relaxed),
            swept_bytes: self.swept_bytes.load(Ordering::Relaxed),
            oom: self.oom.load(Ordering::Relaxed),
        }
    }

    /// Runs a collection now (if one is not already running) regardless of
    /// occupancy. Mainly for tests and explicit `System.gc()`-style calls.
    pub fn collect_now(&self) {
        let Some(_decision) = self.collector.try_lock() else {
            // Another thread is collecting; wait for it to finish.
            let _sync = self.collector.lock();
            return;
        };
        let _pause = self.gate.write();
        self.run_collection();
    }

    /// Mark/sweep over the registry. Caller holds both the collector mutex
    /// and the write gate.
    fn run_collection(&self) {
        let start = Instant::now();
        let mut marked: u64 = 0;
        let mut swept: u64 = 0;

        for _pass in 0..self.config.mark_passes.max(1) {
            marked = 0;
            for shard in self.shards.iter() {
                let slab = shard.lock();
                // Mark: touch every live entry — real work ∝ live set, the
                // essence of tracing-collector cost.
                for e in slab.entries.iter() {
                    if e.state == STATE_LIVE {
                        marked = marked.wrapping_add(std::hint::black_box(e.size) as u64);
                    }
                }
            }
        }
        // Sweep: reclaim dead entries.
        for shard in self.shards.iter() {
            let mut slab = shard.lock();
            let Slab {
                entries,
                free_slots,
            } = &mut *slab;
            for (i, e) in entries.iter_mut().enumerate() {
                if e.state == STATE_DEAD {
                    swept += e.size as u64;
                    e.state = STATE_EMPTY;
                    e.size = 0;
                    free_slots.push(i as u32);
                }
            }
        }
        std::hint::black_box(marked);
        self.young.lock().clear();
        self.young_garbage.store(0, Ordering::Relaxed);
        // Everything surviving a full collection is old now.
        for shard in self.shards.iter() {
            let mut slab = shard.lock();
            for e in slab.entries.iter_mut() {
                e.young = false;
            }
        }

        self.swept_bytes.fetch_add(swept, Ordering::Relaxed);
        self.garbage_bytes.fetch_sub(swept, Ordering::Relaxed);
        // Occupancy collapses to the live set.
        self.occupancy
            .store(self.live_bytes.load(Ordering::Relaxed), Ordering::Relaxed);
        self.collections.fetch_add(1, Ordering::Relaxed);

        let pause = start.elapsed().as_nanos() as u64;
        self.total_pause_ns.fetch_add(pause, Ordering::Relaxed);
        self.max_pause_ns.fetch_max(pause, Ordering::Relaxed);
    }

    fn young_fill(&self) -> u64 {
        if self.config.generational {
            self.young_garbage.load(Ordering::Relaxed)
        } else {
            self.garbage_bytes.load(Ordering::Relaxed)
        }
    }

    fn maybe_collect(&self) {
        let over_trigger = self.occupancy.load(Ordering::Relaxed) > self.trigger_bytes;
        let young_full = self.young_fill() > self.config.young_bytes;
        if !over_trigger && !young_full {
            return;
        }
        let Some(_decision) = self.collector.try_lock() else {
            return; // someone else is already on it
        };
        let over_trigger = self.occupancy.load(Ordering::Relaxed) > self.trigger_bytes;
        let young_full = self.young_fill() > self.config.young_bytes;
        if !over_trigger && !young_full {
            return;
        }
        // The STW pause: blocks every mutator at its next safepoint.
        let _pause = self.gate.write();
        if self.config.generational && young_full && !over_trigger {
            self.run_minor_collection();
        } else {
            self.run_collection();
        }
    }

    /// Minor collection: examine only objects allocated since the last
    /// collection. Dead ones are swept; survivors are "promoted" (left in
    /// the registry, no longer tracked as young). Work ∝ young-set size,
    /// not the live set — the generational hypothesis.
    fn run_minor_collection(&self) {
        let start = Instant::now();
        let young = std::mem::take(&mut *self.young.lock());
        let mut swept = 0u64;
        let mut survivors = 0u64;
        for token in young {
            let shard_idx = (token.0 >> 48) as usize;
            let slot = (token.0 & 0xFFFF_FFFF_FFFF) as usize;
            let mut slab = self.shards[shard_idx].lock();
            let e = &mut slab.entries[slot];
            if !e.young {
                continue; // already handled by a full collection
            }
            e.young = false;
            match e.state {
                STATE_DEAD => {
                    swept += e.size as u64;
                    e.state = STATE_EMPTY;
                    e.size = 0;
                    slab.free_slots.push(slot as u32);
                }
                STATE_LIVE => {
                    // Promotion: real copy cost in HotSpot; here the touch
                    // of the entry is the modelled work.
                    survivors = survivors.wrapping_add(std::hint::black_box(e.size) as u64);
                }
                _ => {}
            }
        }
        std::hint::black_box(survivors);
        self.swept_bytes.fetch_add(swept, Ordering::Relaxed);
        self.garbage_bytes.fetch_sub(swept, Ordering::Relaxed);
        self.young_garbage.store(0, Ordering::Relaxed);
        self.occupancy.fetch_sub(swept, Ordering::Relaxed);
        self.collections.fetch_add(1, Ordering::Relaxed);
        self.minor_collections.fetch_add(1, Ordering::Relaxed);
        let pause = start.elapsed().as_nanos() as u64;
        self.total_pause_ns.fetch_add(pause, Ordering::Relaxed);
        self.max_pause_ns.fetch_max(pause, Ordering::Relaxed);
    }
}

impl HeapModel for ManagedHeap {
    fn alloc(&self, bytes: usize) -> ObjToken {
        let bytes = bytes as u64;
        {
            // Behave like a mutator while touching the registry.
            let _mutator = self.gate.read();
            let shard_idx = self.next_shard.fetch_add(1, Ordering::Relaxed) % SHARDS;
            let slot = self.shards[shard_idx].lock().insert(bytes as u32);
            self.live_bytes.fetch_add(bytes, Ordering::Relaxed);
            self.live_objects.fetch_add(1, Ordering::Relaxed);
            self.occupancy.fetch_add(bytes, Ordering::Relaxed);

            let token = ObjToken(((shard_idx as u64) << 48) | slot as u64);
            if self.config.generational {
                self.young.lock().push(token);
            }
            // OOM when the *live* set exceeds the practically usable
            // fraction of the budget: collection cannot help then.
            if self.live_bytes.load(Ordering::Relaxed) > self.live_limit {
                self.oom.store(true, Ordering::Relaxed);
            }
            if self.occupancy.load(Ordering::Relaxed) <= self.trigger_bytes
                && self.young_fill() <= self.config.young_bytes
            {
                return token;
            }
            drop(_mutator);
            self.maybe_collect();
            token
        }
    }

    fn free(&self, token: ObjToken) {
        if token == ObjToken::NONE {
            return;
        }
        let _mutator = self.gate.read();
        let shard_idx = (token.0 >> 48) as usize;
        let slot = (token.0 & 0xFFFF_FFFF_FFFF) as usize;
        let mut slab = self.shards[shard_idx].lock();
        let e = &mut slab.entries[slot];
        assert_eq!(e.state, STATE_LIVE, "double free of heap object");
        e.state = STATE_DEAD;
        let size = e.size as u64;
        let was_young = e.young;
        drop(slab);
        if was_young {
            self.young_garbage.fetch_add(size, Ordering::Relaxed);
        }
        self.live_bytes.fetch_sub(size, Ordering::Relaxed);
        self.live_objects.fetch_sub(1, Ordering::Relaxed);
        self.garbage_bytes.fetch_add(size, Ordering::Relaxed);
        // Note: occupancy stays up until the next collection sweeps it.
    }

    #[inline]
    fn safepoint(&self) {
        // Blocks only while a collector holds the write gate.
        drop(self.gate.read());
    }

    fn oom(&self) -> bool {
        self.oom.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for ManagedHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ManagedHeap")
            .field("capacity", &self.config.capacity_bytes)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn accounting_tracks_live_and_garbage() {
        let h = ManagedHeap::new(HeapConfig::with_capacity(10_000));
        let a = h.alloc(1000);
        let b = h.alloc(2000);
        let s = h.stats();
        assert_eq!(s.live_bytes, 3000);
        assert_eq!(s.live_objects, 2);
        h.free(a);
        let s = h.stats();
        assert_eq!(s.live_bytes, 2000);
        assert_eq!(s.garbage_bytes, 1000);
        assert_eq!(s.occupancy(), 3000);
        h.collect_now();
        let s = h.stats();
        assert_eq!(s.garbage_bytes, 0);
        assert_eq!(s.occupancy(), 2000);
        assert_eq!(s.swept_bytes, 1000);
        h.free(b);
    }

    #[test]
    fn collection_triggers_at_budget() {
        let h = ManagedHeap::new(HeapConfig::with_capacity(10_000));
        // Allocate and immediately free: all garbage, so collections keep
        // the heap afloat and OOM never fires.
        for _ in 0..100 {
            let t = h.alloc(1000);
            h.free(t);
        }
        let s = h.stats();
        assert!(
            s.collections >= 5,
            "expected several collections, got {}",
            s.collections
        );
        assert!(!s.oom);
        assert!(s.live_bytes == 0);
    }

    #[test]
    fn oom_when_live_exceeds_budget() {
        let h = ManagedHeap::new(HeapConfig::with_capacity(10_000));
        let mut tokens = Vec::new();
        for _ in 0..20 {
            tokens.push(h.alloc(1000));
        }
        assert!(h.oom(), "live set of 20KB must not fit in 10KB budget");
    }

    #[test]
    fn no_oom_below_budget() {
        let h = ManagedHeap::new(HeapConfig::with_capacity(100_000));
        for _ in 0..50 {
            let _ = h.alloc(1000);
        }
        assert!(!h.oom());
    }

    #[test]
    fn gc_frequency_grows_with_live_ratio() {
        // Classical GC cost model: same allocation traffic, less headroom →
        // more collections.
        let run = |live_kb: u64| {
            let h = ManagedHeap::new(HeapConfig::with_capacity(100_000));
            let mut live = Vec::new();
            for _ in 0..live_kb {
                live.push(h.alloc(1000));
            }
            for _ in 0..500 {
                let t = h.alloc(100);
                h.free(t);
            }
            h.stats().collections
        };
        let low = run(10); // 10% live
        let high = run(80); // 80% live
        assert!(
            high > low,
            "less headroom must collect more often ({high} vs {low})"
        );
    }

    #[test]
    fn safepoint_blocks_during_collection() {
        let h = Arc::new(ManagedHeap::new(HeapConfig::with_capacity(1 << 20)));
        // Build a large live set so a collection takes measurable time.
        for _ in 0..10_000 {
            let _ = h.alloc(32);
        }
        let flag = Arc::new(AtomicBool::new(false));
        let (h2, f2) = (h.clone(), flag.clone());
        // Hold the write gate (as a collector would), and check a mutator's
        // safepoint does not return until it is released.
        let gate_held = h.gate.write();
        let t = std::thread::spawn(move || {
            h2.safepoint();
            f2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(
            !flag.load(Ordering::SeqCst),
            "safepoint returned during STW"
        );
        drop(gate_held);
        t.join().unwrap();
        assert!(flag.load(Ordering::SeqCst));
    }

    #[test]
    fn tokens_survive_slot_reuse() {
        let h = ManagedHeap::new(HeapConfig::with_capacity(1 << 20));
        let a = h.alloc(128);
        h.free(a);
        h.collect_now();
        // The freed slot may be reused; the new token must be independent.
        let b = h.alloc(256);
        let s = h.stats();
        assert_eq!(s.live_bytes, 256);
        h.free(b);
        h.collect_now();
        assert_eq!(h.stats().live_bytes, 0);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let h = ManagedHeap::new(HeapConfig::with_capacity(1 << 20));
        let a = h.alloc(128);
        h.free(a);
        h.free(a);
    }
}

#[cfg(test)]
mod generational_tests {
    use super::*;

    fn gen_heap(capacity: u64, young: u64) -> ManagedHeap {
        ManagedHeap::new(HeapConfig {
            capacity_bytes: capacity,
            young_bytes: young,
            generational: true,
            ..HeapConfig::with_capacity(capacity)
        })
    }

    #[test]
    fn minor_collections_sweep_young_garbage() {
        let h = gen_heap(1 << 20, 4 << 10);
        // Transient-heavy: everything dies young.
        for _ in 0..1_000 {
            let t = h.alloc(128);
            h.free(t);
        }
        let s = h.stats();
        assert!(s.minor_collections >= 10, "minors: {}", s.minor_collections);
        assert_eq!(s.live_bytes, 0);
        // Residual garbage: the un-triggered young tail plus the handful of
        // objects promoted while momentarily live and freed afterwards
        // (premature promotion — real generational behaviour).
        assert!(s.garbage_bytes <= 16 << 10, "garbage: {}", s.garbage_bytes);
        assert!(!s.oom);
    }

    #[test]
    fn survivors_are_promoted_not_reswept() {
        let h = gen_heap(1 << 20, 2 << 10);
        // Long-lived objects survive minors; they must not be swept.
        let mut keep = Vec::new();
        for i in 0..200 {
            keep.push(h.alloc(64));
            // Interleave garbage to drive minors.
            let t = h.alloc(64);
            h.free(t);
            if i % 50 == 0 {
                // occasional extra churn
                let t = h.alloc(256);
                h.free(t);
            }
        }
        let s = h.stats();
        assert_eq!(s.live_objects, 200);
        assert_eq!(s.live_bytes, 200 * 64);
        assert!(s.minor_collections > 0);
        for t in keep {
            h.free(t);
        }
        h.collect_now();
        assert_eq!(h.stats().live_bytes, 0);
    }

    #[test]
    fn major_still_runs_at_occupancy_trigger() {
        let h = ManagedHeap::new(HeapConfig {
            capacity_bytes: 64 << 10,
            young_bytes: 1 << 20, // young never fills → only majors
            generational: true,
            trigger_ratio: 0.5,
            ..HeapConfig::with_capacity(64 << 10)
        });
        for _ in 0..1_000 {
            let t = h.alloc(512);
            h.free(t);
        }
        let s = h.stats();
        assert!(s.collections > s.minor_collections, "majors must fire");
        assert_eq!(s.live_bytes, 0);
    }

    #[test]
    fn minor_pause_is_cheaper_than_major() {
        // With a large promoted live set, minors (scanning the small young
        // set) must be far cheaper than majors (scanning everything).
        let h = gen_heap(64 << 20, 16 << 10);
        for _ in 0..100_000 {
            let _ = h.alloc(64); // big long-lived population
        }
        // Flush the population out of the young set so the measured minors
        // only pay for fresh garbage.
        h.collect_now();
        let before = h.stats();
        // Drive a few minors with fresh garbage.
        for _ in 0..1_000 {
            let t = h.alloc(64);
            h.free(t);
        }
        let after_minors = h.stats();
        let minors = after_minors.minor_collections - before.minor_collections;
        assert!(minors >= 2, "minors: {minors}");
        let minor_avg = (after_minors.total_pause_ns - before.total_pause_ns) / minors.max(1);
        let t0 = std::time::Instant::now();
        h.collect_now(); // full scan over 100K live objects
        let major_pause = t0.elapsed().as_nanos() as u64;
        assert!(
            major_pause > minor_avg * 3,
            "major {major_pause}ns !≫ minor {minor_avg}ns"
        );
    }
}
