//! # oak-gcheap — a managed-heap (JVM) simulator
//!
//! Oak's motivating adversary is the Java garbage collector: on-heap
//! KV-maps pay (a) per-object layout overhead (headers, reference
//! indirection, padding) and (b) collection work that grows as live data
//! approaches the heap budget. Rust has neither, so this crate *simulates*
//! the managed heap for the paper's "on-heap" baselines, preserving the two
//! behaviours the evaluation (Figures 3a/3b, 5a–5c) depends on:
//!
//! 1. **Layout accounting** ([`layout`]) — every simulated on-heap object is
//!    charged the size it would occupy under the HotSpot object model
//!    (16-byte headers, 8-byte references, 8-byte alignment, array length
//!    words). This is what makes `Skiplist-OnHeap` cap out at ~40% raw-data
//!    utilization in the paper while Oak reaches far higher.
//!
//! 2. **Stop-the-world collection** ([`ManagedHeap`]) — allocations register
//!    objects in a sharded registry; when heap occupancy (live + garbage)
//!    reaches the budget, the allocating thread takes a write lock that
//!    stops every mutator at its next [`safepoint`](HeapModel::safepoint)
//!    and performs a genuine mark/sweep pass over the registry (real memory
//!    traffic proportional to the live set, the classical GC cost model:
//!    work per allocated byte ∝ `L / (H − L)`). When even a full collection
//!    cannot satisfy the request the heap raises its out-of-memory flag,
//!    which the benchmarks report as "cannot run with this RAM budget"
//!    (paper Fig 3a caps, Fig 5b's 29 GB floor).
//!
//! Data structures opt in through the [`HeapModel`] trait; [`NoopHeap`]
//! makes the accounting free for off-heap configurations.

#![warn(missing_docs)]

pub mod layout;

mod heap;
mod model;
mod stats;

pub use heap::{HeapConfig, ManagedHeap};
pub use model::{HeapModel, NoopHeap, ObjToken};
pub use stats::GcStats;
