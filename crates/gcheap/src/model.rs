//! The `HeapModel` trait: how simulated data structures report allocations.

/// Opaque handle to a registered heap object.
///
/// Returned by [`HeapModel::alloc`]; stored by the owning data structure and
/// passed back to [`HeapModel::free`] when the object becomes garbage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjToken(pub(crate) u64);

impl ObjToken {
    /// The token used by [`NoopHeap`]; carries no registry slot.
    pub const NONE: ObjToken = ObjToken(u64::MAX);
}

/// Abstraction over heap accounting, implemented by
/// [`ManagedHeap`](crate::ManagedHeap) (full simulation) and [`NoopHeap`]
/// (zero-cost, for off-heap configurations).
///
/// Simulated "on-heap" structures call `alloc`/`free` for every object a
/// Java implementation would create, and `safepoint` at operation
/// boundaries so a pending stop-the-world collection can pause them — the
/// analogue of JVM safepoint polls.
pub trait HeapModel: Send + Sync {
    /// Registers an object of `bytes` bytes. If the heap is at budget this
    /// may first run a stop-the-world collection; if even that cannot make
    /// room, the model's out-of-memory flag is raised (allocation itself
    /// still proceeds so callers need no unwinding logic; benchmarks check
    /// [`oom`](Self::oom) and discard the run).
    fn alloc(&self, bytes: usize) -> ObjToken;

    /// Declares the object garbage. The bytes remain part of heap occupancy
    /// until the next collection sweeps them, as on a real JVM.
    fn free(&self, token: ObjToken);

    /// A mutator-side poll: blocks while a stop-the-world collection is in
    /// progress. Call once per data-structure operation.
    fn safepoint(&self);

    /// Whether an allocation has ever exceeded the budget.
    fn oom(&self) -> bool;

    /// Registers short-lived garbage: the boxed integers, iterator objects
    /// and temporary buffers a Java implementation allocates *per
    /// operation*. They die immediately but still occupy the heap until
    /// the next collection — this is what makes GC frequency climb as
    /// headroom shrinks (the Figure 3 throughput collapse).
    fn transient(&self, bytes: usize) {
        let t = self.alloc(bytes);
        self.free(t);
    }
}

/// A heap model that costs nothing: used for Oak and other off-heap
/// configurations whose metadata footprint is negligible, and for unit tests
/// of the data structures themselves.
#[derive(Debug, Default, Clone)]
pub struct NoopHeap;

impl HeapModel for NoopHeap {
    #[inline]
    fn alloc(&self, _bytes: usize) -> ObjToken {
        ObjToken::NONE
    }

    #[inline]
    fn free(&self, _token: ObjToken) {}

    #[inline]
    fn safepoint(&self) {}

    #[inline]
    fn oom(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_heap_is_inert() {
        let h = NoopHeap;
        let t = h.alloc(1 << 30);
        assert_eq!(t, ObjToken::NONE);
        h.free(t);
        h.safepoint();
        assert!(!h.oom());
    }
}
