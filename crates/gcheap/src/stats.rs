//! Collection and occupancy statistics.

/// Point-in-time statistics for a [`ManagedHeap`](crate::ManagedHeap).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcStats {
    /// Heap budget in bytes.
    pub capacity: u64,
    /// Bytes owned by live objects.
    pub live_bytes: u64,
    /// Bytes owned by garbage awaiting collection.
    pub garbage_bytes: u64,
    /// Number of live objects in the registry.
    pub live_objects: u64,
    /// Stop-the-world collections performed (minor + major).
    pub collections: u64,
    /// Minor (young-generation) collections, when generational mode is on.
    pub minor_collections: u64,
    /// Total wall-clock time spent inside collections, nanoseconds.
    pub total_pause_ns: u64,
    /// Longest single collection, nanoseconds.
    pub max_pause_ns: u64,
    /// Cumulative bytes reclaimed by sweeps.
    pub swept_bytes: u64,
    /// Whether any allocation exceeded the budget even after collecting.
    pub oom: bool,
}

impl GcStats {
    /// Current heap occupancy (live + uncollected garbage).
    pub fn occupancy(&self) -> u64 {
        self.live_bytes + self.garbage_bytes
    }

    /// Occupancy as a fraction of capacity.
    pub fn occupancy_ratio(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.occupancy() as f64 / self.capacity as f64
        }
    }
}
