//! HotSpot-style object size model.
//!
//! The paper attributes `Skiplist-OnHeap`'s poor memory utilization to "the
//! overhead for storing Java objects, as well as the headroom required by
//! the Java GC" (§5.2). This module charges simulated on-heap objects the
//! sizes they would have under the 64-bit HotSpot layout (without compressed
//! oops, matching the large heaps the paper runs with).

/// Bytes of header on every ordinary object (mark word + class pointer).
pub const OBJECT_HEADER: usize = 16;
/// Additional length word on arrays.
pub const ARRAY_LENGTH_FIELD: usize = 4;
/// Size of an object reference field.
pub const REF_SIZE: usize = 8;
/// Object alignment.
pub const ALIGN: usize = 8;

/// Rounds a size up to the object alignment.
#[inline]
pub fn align(n: usize) -> usize {
    (n + ALIGN - 1) & !(ALIGN - 1)
}

/// Size of an ordinary object with `field_bytes` of instance fields.
#[inline]
pub fn object(field_bytes: usize) -> usize {
    align(OBJECT_HEADER + field_bytes)
}

/// Size of an array of `n` elements of `elem` bytes each.
#[inline]
pub fn array(elem: usize, n: usize) -> usize {
    align(OBJECT_HEADER + ARRAY_LENGTH_FIELD + elem * n)
}

/// Size of a `byte[]` of length `n`.
#[inline]
pub fn byte_array(n: usize) -> usize {
    array(1, n)
}

/// Size of a boxed key/value object wrapping `n` payload bytes: the wrapper
/// object (one reference to a backing `byte[]`) plus the backing array.
/// This models e.g. `java.lang.String`/`ByteBuffer`-like holders.
#[inline]
pub fn boxed_bytes(n: usize) -> usize {
    object(REF_SIZE) + byte_array(n)
}

/// Size of a `ConcurrentSkipListMap` data node: object header plus key
/// reference, value reference, and next reference.
#[inline]
pub fn skiplist_node() -> usize {
    object(3 * REF_SIZE)
}

/// Size of a `ConcurrentSkipListMap` index node (one per tower level above
/// the base): node ref, down ref, right ref.
#[inline]
pub fn skiplist_index_node() -> usize {
    object(3 * REF_SIZE)
}

/// Total simulated on-heap charge for one skiplist entry holding a key of
/// `key_len` bytes and a value of `val_len` bytes, with `levels` index
/// levels above the base list.
#[inline]
pub fn skiplist_entry(key_len: usize, val_len: usize, levels: usize) -> usize {
    skiplist_node() + boxed_bytes(key_len) + boxed_bytes(val_len) + levels * skiplist_index_node()
}

/// Types that can report the size they would occupy as Java objects.
///
/// Simulated on-heap data structures use this to charge the
/// [`HeapModel`](crate::HeapModel) for keys and values they store.
pub trait JavaSized {
    /// Simulated on-heap size in bytes, including headers and backing
    /// arrays.
    fn java_size(&self) -> usize;
}

impl JavaSized for Vec<u8> {
    fn java_size(&self) -> usize {
        boxed_bytes(self.len())
    }
}

impl JavaSized for Box<[u8]> {
    fn java_size(&self) -> usize {
        boxed_bytes(self.len())
    }
}

impl JavaSized for String {
    fn java_size(&self) -> usize {
        // String object (hash + ref) + backing byte[].
        object(REF_SIZE + 4) + byte_array(self.len())
    }
}

impl JavaSized for u64 {
    fn java_size(&self) -> usize {
        object(8) // java.lang.Long
    }
}

impl JavaSized for i64 {
    fn java_size(&self) -> usize {
        object(8)
    }
}

impl JavaSized for u32 {
    fn java_size(&self) -> usize {
        object(4) // java.lang.Integer
    }
}

impl<T: JavaSized> JavaSized for std::sync::Arc<T> {
    fn java_size(&self) -> usize {
        (**self).java_size()
    }
}

impl<A: JavaSized, B: JavaSized> JavaSized for (A, B) {
    fn java_size(&self) -> usize {
        object(2 * REF_SIZE) + self.0.java_size() + self.1.java_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn java_sized_impls() {
        assert_eq!(vec![0u8; 100].java_size(), boxed_bytes(100));
        assert_eq!(7u64.java_size(), 24);
        assert_eq!("abcd".to_string().java_size(), object(12) + byte_array(4));
        let pair = (vec![0u8; 4], 1u64);
        assert_eq!(pair.java_size(), object(16) + boxed_bytes(4) + 24);
    }

    #[test]
    fn alignment() {
        assert_eq!(align(0), 0);
        assert_eq!(align(1), 8);
        assert_eq!(align(8), 8);
        assert_eq!(align(17), 24);
    }

    #[test]
    fn object_sizes_match_hotspot_model() {
        // Bare object: header only.
        assert_eq!(object(0), 16);
        // One long field.
        assert_eq!(object(8), 24);
        // byte[0] is header + length word, aligned.
        assert_eq!(byte_array(0), 24);
        assert_eq!(byte_array(100), align(16 + 4 + 100));
    }

    #[test]
    fn boxed_overhead_dominates_small_payloads() {
        // A 100-byte key costs 24 (wrapper) + 120 (array) = 144 on-heap
        // versus 104 (100 rounded to 8-granularity) off-heap: ~38% overhead,
        // in line with the paper's utilization numbers.
        let on_heap = boxed_bytes(100);
        assert_eq!(on_heap, 24 + 120);
        assert!(on_heap as f64 / 100.0 > 1.38);
    }

    #[test]
    fn skiplist_entry_charges_everything() {
        let e = skiplist_entry(100, 1000, 2);
        assert_eq!(
            e,
            skiplist_node() + boxed_bytes(100) + boxed_bytes(1000) + 2 * skiplist_index_node()
        );
    }
}
