//! Ablation benches for design choices DESIGN.md calls out:
//!
//! * chunk size (search locality vs rebalance cost),
//! * sorted-prefix + bypass insertion vs rebalance-every-insert,
//! * stack-based descending scan vs lookup-per-key descending on Oak,
//! * the MapDB-style B-tree comparator (≥10× slower claim, §1.2).

mod common;

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oak_bench::adapter::TraitAdapter;
use oak_bench::driver::{ingest, run_fixed_ops};
use oak_bench::workload::{Mix, WorkloadConfig};
use oak_core::{OakMap, OakMapConfig};
use oak_skiplist::btree::LockedBTreeMap;

fn wl() -> WorkloadConfig {
    WorkloadConfig {
        key_range: 10_000,
        key_size: 100,
        value_size: 256,
        seed: 0xAB1A,
        distribution: oak_bench::workload::KeyDistribution::Uniform,
    }
}

/// Chunk-size sweep: gets against maps built with different capacities.
fn ablate_chunk_size(c: &mut Criterion) {
    let wl = wl();
    let mut g = c.benchmark_group("ablate_chunk_size_get");
    common::tune(&mut g);
    g.throughput(Throughput::Elements(1));
    for cap in [64u32, 256, 1024, 4096] {
        let map = TraitAdapter::new(
            "OakMap",
            OakMap::with_config(
                OakMapConfig::default()
                    .chunk_capacity(cap)
                    .pool(common::pool()),
            ),
        );
        ingest(&map, &wl);
        g.bench_with_input(BenchmarkId::new("get", cap), &cap, |b, _| {
            b.iter_custom(|iters| run_fixed_ops(&map, &wl, Mix::GetZeroCopy, iters))
        });
    }
    g.finish();
}

/// Bypass insertion vs always-rebalance: an unsorted-ratio of ~0 forces a
/// reorganization storm, quantifying what the bypass list saves.
fn ablate_rebalance_policy(c: &mut Criterion) {
    let wl = wl();
    let mut g = c.benchmark_group("ablate_rebalance_policy_put");
    common::tune(&mut g);
    g.throughput(Throughput::Elements(1));
    for (label, ratio) in [("bypass-0.5", 0.5f64), ("eager-0.05", 0.05)] {
        let mut cfg = OakMapConfig::default().pool(common::pool());
        cfg.rebalance_unsorted_ratio = ratio;
        let map = TraitAdapter::new("OakMap", OakMap::with_config(cfg));
        ingest(&map, &wl);
        g.bench_function(label, |b| {
            b.iter_custom(|iters| run_fixed_ops(&map, &wl, Mix::PutOnly, iters))
        });
    }
    g.finish();
}

/// Oak's stack-based descending scan vs a lookup-per-key descent over the
/// same Oak map (isolating the Figure 2 mechanism itself).
fn ablate_descend_mechanism(c: &mut Criterion) {
    let wl = wl();
    let map = OakMap::with_config(OakMapConfig::default().pool(common::pool()));
    for id in 0..wl.key_range {
        map.put(&wl.key(id), &wl.value(id)).unwrap();
    }
    let scan = 1_000usize;
    let from = wl.key(wl.key_range - 1);

    let mut g = c.benchmark_group("ablate_descend");
    common::tune(&mut g);
    g.throughput(Throughput::Elements(scan as u64));
    g.bench_function("stack-based(Fig2)", |b| {
        b.iter_custom(|iters| {
            let start = Instant::now();
            for _ in 0..iters {
                let mut n = 0;
                map.for_each_descending(Some(&from), None, |_, _| {
                    n += 1;
                    n < scan
                });
                std::hint::black_box(n);
            }
            start.elapsed()
        })
    });
    g.bench_function("lookup-per-key", |b| {
        b.iter_custom(|iters| {
            let start = Instant::now();
            for _ in 0..iters {
                // Emulate the skiplist strategy on Oak: a fresh descending
                // lookup (index query + position rebuild) for every key,
                // instead of resuming the Figure 2 stack.
                let mut cursor = from.clone();
                let mut n = 0;
                while n < scan {
                    let mut stepped = None;
                    map.for_each_descending(Some(&cursor), None, |k, _| {
                        if k < cursor.as_slice() {
                            stepped = Some(k.to_vec());
                            false
                        } else {
                            true
                        }
                    });
                    match stepped {
                        Some(k) => cursor = k,
                        None => break,
                    }
                    n += 1;
                }
                std::hint::black_box(&cursor);
            }
            start.elapsed()
        })
    });
    g.finish();
}

/// MapDB-style B-tree vs Oak on gets and puts (the ≥10× gap at scale; at
/// bench scale the gap is smaller but the ordering must hold).
fn ablate_btree(c: &mut Criterion) {
    let wl = wl();
    let mut g = c.benchmark_group("ablate_btree");
    common::tune(&mut g);
    g.throughput(Throughput::Elements(1));
    let oak = TraitAdapter::new(
        "OakMap",
        OakMap::with_config(OakMapConfig::default().pool(common::pool())),
    );
    ingest(&oak, &wl);
    let btree = TraitAdapter::new("MapDB-BTree", LockedBTreeMap::new(common::pool()));
    ingest(&btree, &wl);
    g.bench_function("Oak-get", |b| {
        b.iter_custom(|iters| run_fixed_ops(&oak, &wl, Mix::GetZeroCopy, iters))
    });
    g.bench_function("BTree-get", |b| {
        b.iter_custom(|iters| run_fixed_ops(&btree, &wl, Mix::GetZeroCopy, iters))
    });
    g.bench_function("Oak-put", |b| {
        b.iter_custom(|iters| run_fixed_ops(&oak, &wl, Mix::PutOnly, iters))
    });
    g.bench_function("BTree-put", |b| {
        b.iter_custom(|iters| run_fixed_ops(&btree, &wl, Mix::PutOnly, iters))
    });
    g.finish();
}

/// Header reclamation policies under delete-heavy churn (the §3.3
/// extension): throughput cost of generation checks + recycling, against
/// the default retain-forever manager.
fn ablate_reclamation(c: &mut Criterion) {
    use oak_mempool::ReclamationPolicy;
    let wl = wl();
    let mut g = c.benchmark_group("ablate_reclamation_churn");
    common::tune(&mut g);
    g.throughput(Throughput::Elements(1));
    for (label, policy) in [
        ("retain-headers", ReclamationPolicy::RetainHeaders),
        ("reclaim-headers", ReclamationPolicy::ReclaimHeaders),
    ] {
        let map = TraitAdapter::new(
            "OakMap",
            OakMap::with_config(
                OakMapConfig::default()
                    .pool(common::pool())
                    .reclamation(policy),
            ),
        );
        ingest(&map, &wl);
        g.bench_function(label, |b| {
            b.iter_custom(|iters| run_fixed_ops(&map, &wl, Mix::PutRemoveChurn, iters))
        });
    }
    g.finish();
}

/// Uniform vs Zipfian key skew on gets (hot chunks stay cached; skew also
/// concentrates header-lock contention under writes).
fn ablate_key_skew(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_key_skew_get");
    common::tune(&mut g);
    g.throughput(Throughput::Elements(1));
    for (label, wl) in [("uniform", wl()), ("zipf-0.99", wl().zipfian(0.99))] {
        let map = TraitAdapter::new(
            "OakMap",
            OakMap::with_config(OakMapConfig::default().pool(common::pool())),
        );
        ingest(&map, &wl);
        g.bench_function(label, |b| {
            b.iter_custom(|iters| run_fixed_ops(&map, &wl, Mix::GetZeroCopy, iters))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ablate_chunk_size,
    ablate_rebalance_policy,
    ablate_descend_mechanism,
    ablate_btree,
    ablate_reclamation,
    ablate_key_skew
);
criterion_main!(benches);
