//! Figure 5a: Druid I² ingestion throughput — I²-Oak vs I²-legacy.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oak_bench::druidfig::{generate_tuples, ingest_legacy, ingest_oak};
use oak_bench::memfig::IngestOutcome;

fn bench(c: &mut Criterion) {
    let n = 5_000u64;
    let rows = generate_tuples(n);
    let budget = 8u64 << 30; // generous: throughput shape only

    let mut g = c.benchmark_group("fig5a_druid_ingest");
    common::tune(&mut g);
    g.throughput(Throughput::Elements(n));
    g.bench_with_input(BenchmarkId::new("I2-Oak", n), &rows, |b, rows| {
        b.iter(|| match ingest_oak(rows, budget).0 {
            IngestOutcome::Done { kops } => kops,
            IngestOutcome::Oom { .. } => panic!("unexpected OOM"),
        })
    });
    g.bench_with_input(BenchmarkId::new("I2-legacy", n), &rows, |b, rows| {
        b.iter(|| match ingest_legacy(rows, budget).0 {
            IngestOutcome::Done { kops } => kops,
            IngestOutcome::Oom { .. } => panic!("unexpected OOM"),
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
