//! Shared Criterion setup for the figure benches.
//!
//! All benches run at reduced scale so `cargo bench --workspace` finishes
//! quickly; the `synchrobench` / `fig3` / `fig5` binaries run the
//! full-scale sweeps. The *relative* ordering of solutions — the shape the
//! paper reports — is what these regenerate.
#![allow(dead_code)] // each bench target uses a subset of these helpers

use std::sync::Arc;
use std::time::Duration;

use oak_bench::adapter::MapAdapter;
use oak_bench::driver::ingest;
use oak_bench::scenarios::build;
use oak_bench::workload::WorkloadConfig;
use oak_mempool::PoolConfig;

/// Benchmark workload: 20K keys × (100 B + 1 KB), ~22 MB raw.
pub fn workload() -> WorkloadConfig {
    WorkloadConfig::small()
}

/// Pool with ample room for the benchmark dataset plus put churn.
pub fn pool() -> PoolConfig {
    PoolConfig {
        arena_size: 8 << 20,
        max_arenas: 48,
        magazines: false,
        lockfree: false,
        ..Default::default()
    }
}

/// Builds and pre-fills a competitor.
pub fn prepared(name: &str) -> Arc<dyn MapAdapter> {
    let map = build(name, pool(), 4096);
    ingest(map.as_ref(), &workload());
    map
}

/// Applies the common group settings (short, low-sample runs).
pub fn tune(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
}

/// Standard three competitors (plus Oak-Copy where a figure needs it).
pub const COMPETITORS: &[&str] = &["OakMap", "JavaSkipListMap", "OffHeapList"];
