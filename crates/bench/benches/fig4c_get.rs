//! Figure 4c: get-only throughput, including the Oak-Copy legacy curve.
//! Expected shape: Oak-ZC fastest; Oak-Copy pays a copying penalty.

mod common;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use oak_bench::driver::run_fixed_ops;
use oak_bench::workload::Mix;

fn bench(c: &mut Criterion) {
    let wl = common::workload();
    let mut g = c.benchmark_group("fig4c_get");
    common::tune(&mut g);
    g.throughput(Throughput::Elements(1));
    for name in common::COMPETITORS {
        let map = common::prepared(name);
        g.bench_function(*name, |b| {
            b.iter_custom(|iters| run_fixed_ops(map.as_ref(), &wl, Mix::GetZeroCopy, iters))
        });
    }
    // The legacy copying API on the same Oak structure.
    let map = common::prepared("Oak-Copy");
    g.bench_function("Oak-Copy", |b| {
        b.iter_custom(|iters| run_fixed_ops(map.as_ref(), &wl, Mix::GetCopy, iters))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
