//! Figure 3: ingestion under a RAM budget. Criterion measures the
//! in-budget points; the OOM frontier (who caps first) is asserted in the
//! integration tests and swept by the `fig3` binary.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oak_bench::memfig::{ingest_oak, ingest_offheap, ingest_onheap, raw_bytes, IngestOutcome};
use oak_bench::workload::WorkloadConfig;

fn bench(c: &mut Criterion) {
    let wl = WorkloadConfig {
        key_range: u64::MAX,
        key_size: 100,
        value_size: 1024,
        seed: 0xF163,
        distribution: oak_bench::workload::KeyDistribution::Uniform,
    };
    let n = 5_000u64;
    // Generous budget: measures ingestion speed shape (Fig 3a's left side).
    let budget = raw_bytes(&wl, n) * 4;

    let mut g = c.benchmark_group("fig3_ingest");
    common::tune(&mut g);
    g.sample_size(10);
    g.throughput(Throughput::Elements(n));
    g.bench_with_input(BenchmarkId::new("OakMap", n), &n, |b, &n| {
        b.iter(|| match ingest_oak(&wl, n, budget) {
            IngestOutcome::Done { kops } => kops,
            IngestOutcome::Oom { .. } => panic!("unexpected OOM"),
        })
    });
    g.bench_with_input(BenchmarkId::new("JavaSkipListMap", n), &n, |b, &n| {
        b.iter(|| match ingest_onheap(&wl, n, budget) {
            IngestOutcome::Done { kops } => kops,
            IngestOutcome::Oom { .. } => panic!("unexpected OOM"),
        })
    });
    g.bench_with_input(BenchmarkId::new("OffHeapList", n), &n, |b, &n| {
        b.iter(|| match ingest_offheap(&wl, n, budget) {
            IngestOutcome::Done { kops } => kops,
            IngestOutcome::Oom { .. } => panic!("unexpected OOM"),
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
