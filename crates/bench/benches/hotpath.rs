//! Hot-path accelerator microbenches: the on-heap key-prefix cache
//! (in-chunk search with/without it, across corpora that love and hate
//! it) and the allocation magazines (alloc/free churn at 1–8 threads
//! with/without them). Companion to the `offheap_key_derefs` /
//! `freelist_lock_acquires` counters in the synchrobench JSON report:
//! Criterion shows the time, the counters show the mechanism.

mod common;

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oak_core::{OakMap, OakMapConfig};

/// Lookup corpora: how much work the cached prefix can do.
#[derive(Clone, Copy)]
enum Corpus {
    /// Keys diverge within the first 8 bytes: prefixes decide nearly
    /// every probe (the cache's best case).
    Distinct,
    /// All keys share a 12-byte stem: every prefix ties and search falls
    /// back to full compares (the cache's worst case — this curve shows
    /// the overhead bound of the prefix check itself).
    SharedLong,
}

fn corpus_key(corpus: Corpus, id: u32) -> Vec<u8> {
    let scattered = id.wrapping_mul(2_654_435_761);
    match corpus {
        Corpus::Distinct => {
            let mut k = b"stem".to_vec();
            k.extend_from_slice(&scattered.to_be_bytes());
            k
        }
        Corpus::SharedLong => {
            let mut k = b"common-stem-".to_vec();
            k.extend_from_slice(&scattered.to_be_bytes());
            k
        }
    }
}

fn prefilled(corpus: Corpus, prefix_cache: bool, n: u32) -> OakMap {
    let map = OakMap::with_config(
        OakMapConfig::default()
            .chunk_capacity(1024)
            .prefix_cache(prefix_cache)
            .pool(common::pool()),
    );
    for id in 0..n {
        map.put(&corpus_key(corpus, id), b"payload").unwrap();
    }
    map
}

fn bench_prefix_lookup(c: &mut Criterion) {
    const N: u32 = 64 * 1024;
    let mut g = c.benchmark_group("hotpath_prefix_lookup");
    common::tune(&mut g);
    g.throughput(Throughput::Elements(1));
    for (corpus, corpus_name) in [
        (Corpus::Distinct, "distinct8"),
        (Corpus::SharedLong, "shared12"),
    ] {
        for prefix_cache in [true, false] {
            let map = prefilled(corpus, prefix_cache, N);
            let label = if prefix_cache {
                "cache-on"
            } else {
                "cache-off"
            };
            // Present keys: the deepest search (binary search + exact hit).
            g.bench_function(BenchmarkId::new(format!("hit/{corpus_name}"), label), |b| {
                let mut id = 0u32;
                b.iter(|| {
                    id = (id + 1) % N;
                    std::hint::black_box(map.get_with(&corpus_key(corpus, id), |v| v.len()))
                })
            });
            // Absent keys from the same distribution: full floor search
            // plus a failed walk, no exact-hit shortcut.
            g.bench_function(
                BenchmarkId::new(format!("miss/{corpus_name}"), label),
                |b| {
                    let mut id = 0u32;
                    b.iter(|| {
                        id = (id + 1) % N;
                        std::hint::black_box(map.get_with(&corpus_key(corpus, N + id), |v| v.len()))
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_magazine_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath_magazine_churn");
    common::tune(&mut g);
    for threads in [1usize, 2, 4, 8] {
        for (magazines, lockfree, label) in [
            (false, false, "magazines-off"),
            (true, false, "magazines-on"),
            (true, true, "lockfree"),
        ] {
            g.throughput(Throughput::Elements(2 * threads as u64)); // put + remove per thread
            g.bench_function(BenchmarkId::new(format!("threads-{threads}"), label), |b| {
                let map = Arc::new(OakMap::with_config(
                    OakMapConfig::default()
                        .chunk_capacity(512)
                        .pool(common::pool().magazines(magazines).lockfree(lockfree)),
                ));
                b.iter_custom(|iters| {
                    let start = std::time::Instant::now();
                    std::thread::scope(|s| {
                        for t in 0..threads {
                            let map = Arc::clone(&map);
                            s.spawn(move || {
                                // Private key stripe: measures allocator
                                // traffic, not map-level contention.
                                let mut k = *b"churn-00-00000000";
                                k[6] = b'0' + (t / 10) as u8;
                                k[7] = b'0' + (t % 10) as u8;
                                for i in 0..iters {
                                    k[9..].copy_from_slice(&(i % 512).to_be_bytes());
                                    map.put(&k, &[0u8; 128]).unwrap();
                                    map.remove(&k);
                                }
                            });
                        }
                    });
                    start.elapsed()
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_prefix_lookup, bench_magazine_churn);
criterion_main!(benches);
