//! Figure 4a: put-only throughput (Oak vs Skiplist-OnHeap vs
//! Skiplist-OffHeap). Expected shape: Oak ≥ 2× Skiplist-OnHeap.

mod common;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use oak_bench::driver::run_fixed_ops;
use oak_bench::workload::Mix;

fn bench(c: &mut Criterion) {
    let wl = common::workload();
    let mut g = c.benchmark_group("fig4a_put");
    common::tune(&mut g);
    g.throughput(Throughput::Elements(1));
    for name in common::COMPETITORS {
        let map = common::prepared(name);
        g.bench_function(*name, |b| {
            b.iter_custom(|iters| run_fixed_ops(map.as_ref(), &wl, Mix::PutOnly, iters))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
