//! Figure 4f: descending scans of 1K pairs (scaled from 10K). Expected
//! shape: Oak ≫ skiplists — the skiplists pay one O(log N) lookup per key,
//! Oak pays one per chunk.

mod common;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use oak_bench::driver::run_fixed_ops;
use oak_bench::workload::Mix;

const SCAN: usize = 1_000;

fn bench(c: &mut Criterion) {
    let wl = common::workload();
    let mut g = c.benchmark_group("fig4f_descend_scan");
    common::tune(&mut g);
    g.throughput(Throughput::Elements(SCAN as u64));
    for name in common::COMPETITORS {
        let map = common::prepared(name);
        g.bench_function(*name, |b| {
            b.iter_custom(|iters| {
                run_fixed_ops(
                    map.as_ref(),
                    &wl,
                    Mix::DescendScan {
                        len: SCAN,
                        stream: false,
                    },
                    iters,
                )
            })
        });
    }
    let map = common::prepared("OakMap");
    g.bench_function("Oak-stream", |b| {
        b.iter_custom(|iters| {
            run_fixed_ops(
                map.as_ref(),
                &wl,
                Mix::DescendScan {
                    len: SCAN,
                    stream: true,
                },
                iters,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
