//! summary.csv-style reporting, following the artifact appendix layout:
//!
//! ```text
//! Scenario, Bench, Heap size, Direct Mem, #Threads, Shards, Final Size, Throughput
//! ```

use std::fmt::Write as _;

/// One row of the summary table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Scenario label, e.g. `4a-put`.
    pub scenario: String,
    /// Solution name, e.g. `OakMap`.
    pub bench: String,
    /// Simulated on-heap budget (bytes; 0 = unbounded).
    pub heap_bytes: u64,
    /// Off-heap budget (bytes; 0 = none).
    pub direct_bytes: u64,
    /// Worker threads.
    pub threads: usize,
    /// Shards behind the solution (1 for unsharded maps).
    pub shards: usize,
    /// Map size after ingestion.
    pub final_size: usize,
    /// Millions of operations per second (artifact unit).
    pub mops: f64,
    /// Free-form note (e.g. `OOM`).
    pub note: String,
    /// Contention / failure counters from the solution's off-heap pool,
    /// when the solution has one (Oak adapters report these).
    pub robustness: Option<RobustnessStats>,
}

/// Contention and failure counters surfaced next to throughput, so a run
/// that looked fast but aborted locks or dropped allocations is visible in
/// the report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RobustnessStats {
    /// Header-lock backoff rounds summed over all acquisitions.
    pub lock_retries: u64,
    /// Lock acquisitions abandoned after the bounded budget.
    pub contended_aborts: u64,
    /// Allocation requests that returned an error.
    pub failed_allocs: u64,
    /// Values poisoned by the compute panic guard.
    pub poisoned_values: u64,
    /// Operations that surfaced out-of-memory after emergency reclamation.
    pub oom_failures: u64,
    /// Emergency reclamation passes triggered by pool exhaustion.
    pub emergency_reclaims: u64,
    /// External fragmentation of free pool space at snapshot time, as a
    /// rounded percentage (fraction of free bytes outside the largest
    /// free segment; kept integral so the struct stays `Eq`).
    pub fragmentation_pct: u64,
    /// Off-heap key-byte dereferences (hot-path counter: the prefix cache
    /// exists to shrink this).
    pub offheap_key_derefs: u64,
    /// Free-list mutex acquisitions (hot-path counter: allocation
    /// magazines exist to shrink this).
    pub freelist_lock_acquires: u64,
    /// Allocations served from a thread-affine magazine without touching
    /// a free-list lock.
    pub magazine_hits: u64,
    /// Budgeted operation retries taken under the retry/backoff policy.
    pub op_retries: u64,
    /// Operations that surfaced `DeadlineExceeded`.
    pub deadline_exceeded: u64,
    /// Writes rejected early with `Overloaded` by the degraded-mode
    /// controller.
    pub write_sheds: u64,
    /// Scans truncated with `Overloaded` by the degraded-mode controller.
    pub scan_sheds: u64,
    /// Chunk snapshots taken by the batch scan pipeline (hot-path
    /// counter: one per chunk-resident batch fill).
    pub scan_chunk_batches: u64,
    /// Batch refills that found their chunk stale (replaced or
    /// revision-bumped) and re-located through the index.
    pub scan_revalidations: u64,
    /// Batch fills that reused an already-allocated cursor buffer
    /// (hot-path counter: the reusable buffer exists to make this the
    /// common case).
    pub scan_buffer_reuses: u64,
    /// Slices parked on a lock-free per-class stack (magazine surplus
    /// flushes and rack-miss frees that bypassed the mutex).
    pub class_stack_pushes: u64,
    /// Slices recycled from a lock-free per-class stack (magazine refills
    /// and direct pops that bypassed the mutex).
    pub class_stack_pops: u64,
    /// CAS retries across all class-stack operations (contention gauge
    /// for the Treiber stacks).
    pub cas_retries: u64,
    /// Magazine refills served whole batches from a class stack instead
    /// of carving the mutex free list.
    pub lockfree_refills: u64,
    /// Arenas taken from the shared lock-free reservoir (zero for pools
    /// with private arena reservations).
    pub reservoir_takes: u64,
    /// Arenas returned to the shared reservoir.
    pub reservoir_returns: u64,
    /// Failed head CASes across reservoir take/give-back calls — the
    /// mutex-free reservoir's only contention gauge, expected ≈ 0 when
    /// shards keep to their own lanes.
    pub reservoir_cas_retries: u64,
    /// Reservoir takes that had to drain another pool's lane.
    pub reservoir_steals: u64,
}

impl RobustnessStats {
    /// Whether any contention/failure counter fired. The hot-path traffic
    /// counters (`offheap_key_derefs`, `freelist_lock_acquires`,
    /// `magazine_hits`, and the `scan_*` batch counters) are excluded:
    /// they are non-zero on every healthy run and belong in the CSV/JSON,
    /// not the incident note.
    fn has_incidents(&self) -> bool {
        self.lock_retries != 0
            || self.contended_aborts != 0
            || self.failed_allocs != 0
            || self.poisoned_values != 0
            || self.oom_failures != 0
            || self.emergency_reclaims != 0
            || self.fragmentation_pct != 0
            || self.deadline_exceeded != 0
            || self.write_sheds != 0
            || self.scan_sheds != 0
    }
}

impl From<oak_mempool::PoolStats> for RobustnessStats {
    fn from(s: oak_mempool::PoolStats) -> Self {
        RobustnessStats {
            lock_retries: s.lock_retries,
            contended_aborts: s.contended_aborts,
            failed_allocs: s.failed_allocs,
            poisoned_values: s.poisoned_values,
            oom_failures: s.oom_failures,
            emergency_reclaims: s.emergency_reclaims,
            fragmentation_pct: (s.fragmentation() * 100.0).round() as u64,
            offheap_key_derefs: s.offheap_key_derefs,
            freelist_lock_acquires: s.freelist_lock_acquires,
            magazine_hits: s.magazine_hits,
            op_retries: s.op_retries,
            deadline_exceeded: s.deadline_exceeded,
            write_sheds: s.overload_sheds,
            scan_sheds: s.scan_sheds,
            scan_chunk_batches: s.scan_chunk_batches,
            scan_revalidations: s.scan_revalidations,
            scan_buffer_reuses: s.scan_buffer_reuses,
            class_stack_pushes: s.class_stack_pushes,
            class_stack_pops: s.class_stack_pops,
            cas_retries: s.cas_retries,
            lockfree_refills: s.lockfree_refills,
            reservoir_takes: s.reservoir_takes,
            reservoir_returns: s.reservoir_returns,
            reservoir_cas_retries: s.reservoir_cas_retries,
            reservoir_steals: s.reservoir_steals,
        }
    }
}

/// Accumulates rows and renders the CSV.
#[derive(Debug, Default)]
pub struct Summary {
    rows: Vec<Row>,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a row.
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// All rows collected so far.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Renders the artifact-style CSV, extended with the contention /
    /// failure columns (blank for solutions without an off-heap pool).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "Scenario,Bench,Heap size,Direct Mem,#Threads,Shards,Final Size,Throughput,Note,\
             LockRetries,ContendedAborts,FailedAllocs,PoisonedValues,OOMs,Reclaims,FragPct,\
             KeyDerefs,FreelistLocks,MagazineHits,OpRetries,Deadlines,WriteSheds,ScanSheds,\
             ScanBatches,ScanRevals,ScanBufReuses,\
             ClassStackPushes,ClassStackPops,CasRetries,LockfreeRefills,\
             ReservoirTakes,ReservoirReturns,ReservoirCasRetries,ReservoirSteals\n",
        );
        for r in &self.rows {
            let rb = match &r.robustness {
                Some(rb) => format!(
                    "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                    rb.lock_retries,
                    rb.contended_aborts,
                    rb.failed_allocs,
                    rb.poisoned_values,
                    rb.oom_failures,
                    rb.emergency_reclaims,
                    rb.fragmentation_pct,
                    rb.offheap_key_derefs,
                    rb.freelist_lock_acquires,
                    rb.magazine_hits,
                    rb.op_retries,
                    rb.deadline_exceeded,
                    rb.write_sheds,
                    rb.scan_sheds,
                    rb.scan_chunk_batches,
                    rb.scan_revalidations,
                    rb.scan_buffer_reuses,
                    rb.class_stack_pushes,
                    rb.class_stack_pops,
                    rb.cas_retries,
                    rb.lockfree_refills,
                    rb.reservoir_takes,
                    rb.reservoir_returns,
                    rb.reservoir_cas_retries,
                    rb.reservoir_steals
                ),
                None => ",,,,,,,,,,,,,,,,,,,,,,,,".to_string(),
            };
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{:.6},{},{}",
                r.scenario,
                r.bench,
                human_bytes(r.heap_bytes),
                human_bytes(r.direct_bytes),
                r.threads,
                r.shards,
                r.final_size,
                r.mops,
                r.note,
                rb
            );
        }
        out
    }

    /// Renders the machine-readable JSON report: one object per row with
    /// scenario → throughput plus the full robustness and hot-path counter
    /// sets, and the exact command that produced the run (so a checked-in
    /// baseline documents how to regenerate it). Hand-rolled — the
    /// workspace deliberately has no serde dependency.
    pub fn to_json(&self, command: &str) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"command\": \"{}\",", json_escape(command));
        out.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str("    {");
            let _ = write!(
                out,
                "\"scenario\": \"{}\", \"bench\": \"{}\", \"heap_bytes\": {}, \
                 \"direct_bytes\": {}, \"threads\": {}, \"shards\": {}, \
                 \"final_size\": {}, \"mops\": {:.6}, \"note\": \"{}\"",
                json_escape(&r.scenario),
                json_escape(&r.bench),
                r.heap_bytes,
                r.direct_bytes,
                r.threads,
                r.shards,
                r.final_size,
                r.mops,
                json_escape(&r.note)
            );
            match &r.robustness {
                Some(rb) => {
                    let _ = write!(
                        out,
                        ", \"robustness\": {{\"lock_retries\": {}, \"contended_aborts\": {}, \
                         \"failed_allocs\": {}, \"poisoned_values\": {}, \"oom_failures\": {}, \
                         \"emergency_reclaims\": {}, \"fragmentation_pct\": {}, \
                         \"offheap_key_derefs\": {}, \"freelist_lock_acquires\": {}, \
                         \"magazine_hits\": {}, \"op_retries\": {}, \"deadline_exceeded\": {}, \
                         \"write_sheds\": {}, \"scan_sheds\": {}, \"scan_chunk_batches\": {}, \
                         \"scan_revalidations\": {}, \"scan_buffer_reuses\": {}, \
                         \"class_stack_pushes\": {}, \"class_stack_pops\": {}, \
                         \"cas_retries\": {}, \"lockfree_refills\": {}, \
                         \"reservoir_takes\": {}, \"reservoir_returns\": {}, \
                         \"reservoir_cas_retries\": {}, \"reservoir_steals\": {}}}",
                        rb.lock_retries,
                        rb.contended_aborts,
                        rb.failed_allocs,
                        rb.poisoned_values,
                        rb.oom_failures,
                        rb.emergency_reclaims,
                        rb.fragmentation_pct,
                        rb.offheap_key_derefs,
                        rb.freelist_lock_acquires,
                        rb.magazine_hits,
                        rb.op_retries,
                        rb.deadline_exceeded,
                        rb.write_sheds,
                        rb.scan_sheds,
                        rb.scan_chunk_batches,
                        rb.scan_revalidations,
                        rb.scan_buffer_reuses,
                        rb.class_stack_pushes,
                        rb.class_stack_pops,
                        rb.cas_retries,
                        rb.lockfree_refills,
                        rb.reservoir_takes,
                        rb.reservoir_returns,
                        rb.reservoir_cas_retries,
                        rb.reservoir_steals
                    );
                }
                None => out.push_str(", \"robustness\": null"),
            }
            out.push('}');
            if i + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders an aligned table for the terminal.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "{:<28} {:<16} {:>9} {:>9} {:>8} {:>7} {:>11} {:>12}  {}\n",
            "Scenario",
            "Bench",
            "Heap",
            "DirectMem",
            "Threads",
            "Shards",
            "FinalSize",
            "Mops/s",
            "Note"
        );
        for r in &self.rows {
            // Contention details only when something actually went wrong:
            // the common all-zero case stays quiet.
            let mut note = r.note.clone();
            if let Some(rb) = &r.robustness {
                if rb.has_incidents() {
                    if !note.is_empty() {
                        note.push(' ');
                    }
                    let _ = write!(
                        note,
                        "[retries={} aborts={} failed-allocs={} poisoned={} oom={} reclaims={} frag={}%",
                        rb.lock_retries,
                        rb.contended_aborts,
                        rb.failed_allocs,
                        rb.poisoned_values,
                        rb.oom_failures,
                        rb.emergency_reclaims,
                        rb.fragmentation_pct
                    );
                    if rb.deadline_exceeded != 0 || rb.write_sheds != 0 || rb.scan_sheds != 0 {
                        let _ = write!(
                            note,
                            " deadlines={} write-sheds={} scan-sheds={}",
                            rb.deadline_exceeded, rb.write_sheds, rb.scan_sheds
                        );
                    }
                    note.push(']');
                }
            }
            let _ = writeln!(
                out,
                "{:<28} {:<16} {:>9} {:>9} {:>8} {:>7} {:>11} {:>12.4}  {}",
                r.scenario,
                r.bench,
                human_bytes(r.heap_bytes),
                human_bytes(r.direct_bytes),
                r.threads,
                r.shards,
                r.final_size,
                r.mops,
                note
            );
        }
        out
    }
}

/// Minimal JSON string escaping for the report's controlled label/note
/// strings (quotes, backslashes, control characters).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a byte count the way the artifact's config does (`12g`, `100m`).
pub fn human_bytes(b: u64) -> String {
    if b == 0 {
        "0".to_string()
    } else if b.is_multiple_of(1 << 30) {
        format!("{}g", b >> 30)
    } else if b.is_multiple_of(1 << 20) {
        format!("{}m", b >> 20)
    } else {
        format!("{b}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_layout() {
        let mut s = Summary::new();
        s.push(Row {
            scenario: "4a-put".into(),
            bench: "OakMap".into(),
            heap_bytes: 12 << 30,
            direct_bytes: 20 << 30,
            threads: 4,
            shards: 1,
            final_size: 10_000_000,
            mops: 1.5,
            note: String::new(),
            robustness: None,
        });
        let csv = s.to_csv();
        assert!(csv.starts_with("Scenario,Bench,"));
        assert!(csv.contains("#Threads,Shards,Final Size"));
        assert!(csv.contains("4a-put,OakMap,12g,20g,4,1,10000000,1.500000,"));
        assert!(s.to_table().contains("OakMap"));
    }

    #[test]
    fn robustness_columns() {
        let mut s = Summary::new();
        s.push(Row {
            scenario: "4a-put".into(),
            bench: "OakMap".into(),
            heap_bytes: 0,
            direct_bytes: 1 << 30,
            threads: 2,
            shards: 4,
            final_size: 10,
            mops: 0.5,
            note: String::new(),
            robustness: Some(RobustnessStats {
                lock_retries: 7,
                contended_aborts: 1,
                failed_allocs: 2,
                poisoned_values: 3,
                oom_failures: 4,
                emergency_reclaims: 5,
                fragmentation_pct: 6,
                offheap_key_derefs: 100,
                freelist_lock_acquires: 200,
                magazine_hits: 300,
                ..RobustnessStats::default()
            }),
        });
        let csv = s.to_csv();
        assert!(csv.contains(
            "LockRetries,ContendedAborts,FailedAllocs,PoisonedValues,OOMs,Reclaims,FragPct,\
             KeyDerefs,FreelistLocks,MagazineHits,OpRetries,Deadlines,WriteSheds,ScanSheds,\
             ScanBatches,ScanRevals,ScanBufReuses,\
             ClassStackPushes,ClassStackPops,CasRetries,LockfreeRefills,\
             ReservoirTakes,ReservoirReturns,ReservoirCasRetries,ReservoirSteals"
        ));
        assert!(csv.contains(",7,1,2,3,4,5,6,100,200,300,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0\n"));
        let table = s.to_table();
        assert!(table
            .contains("[retries=7 aborts=1 failed-allocs=2 poisoned=3 oom=4 reclaims=5 frag=6%]"));
    }

    #[test]
    fn hot_path_counters_alone_stay_out_of_the_table_note() {
        let mut s = Summary::new();
        s.push(Row {
            scenario: "4c-get-zc".into(),
            bench: "OakMap".into(),
            heap_bytes: 0,
            direct_bytes: 1 << 30,
            threads: 1,
            shards: 1,
            final_size: 10,
            mops: 1.0,
            note: String::new(),
            robustness: Some(RobustnessStats {
                offheap_key_derefs: 12345,
                freelist_lock_acquires: 678,
                magazine_hits: 91011,
                scan_chunk_batches: 21,
                scan_revalidations: 2,
                scan_buffer_reuses: 19,
                class_stack_pushes: 31,
                class_stack_pops: 29,
                cas_retries: 3,
                lockfree_refills: 11,
                reservoir_takes: 4,
                reservoir_returns: 4,
                reservoir_cas_retries: 0,
                reservoir_steals: 1,
                ..RobustnessStats::default()
            }),
        });
        // A healthy run (only traffic counters non-zero) prints no
        // incident bracket, but the counters are in the CSV.
        assert!(!s.to_table().contains("[retries="));
        assert!(s
            .to_csv()
            .contains(",12345,678,91011,0,0,0,0,21,2,19,31,29,3,11,4,4,0,1\n"));
    }

    #[test]
    fn json_report_shape() {
        let mut s = Summary::new();
        s.push(Row {
            scenario: "4a-put".into(),
            bench: "OakMap".into(),
            heap_bytes: 0,
            direct_bytes: 1 << 20,
            threads: 2,
            shards: 1,
            final_size: 99,
            mops: 0.25,
            note: "OOM x1".into(),
            robustness: Some(RobustnessStats {
                oom_failures: 1,
                offheap_key_derefs: 5,
                freelist_lock_acquires: 6,
                magazine_hits: 7,
                scan_chunk_batches: 8,
                scan_revalidations: 9,
                scan_buffer_reuses: 10,
                class_stack_pushes: 11,
                class_stack_pops: 12,
                cas_retries: 13,
                lockfree_refills: 14,
                reservoir_takes: 15,
                reservoir_returns: 16,
                reservoir_cas_retries: 17,
                reservoir_steals: 18,
                ..RobustnessStats::default()
            }),
        });
        s.push(Row {
            scenario: "4a-put".into(),
            bench: "JavaSkipListMap".into(),
            heap_bytes: 0,
            direct_bytes: 0,
            threads: 2,
            shards: 1,
            final_size: 99,
            mops: 0.5,
            note: String::new(),
            robustness: None,
        });
        let json = s.to_json("synchrobench --quick --json out.json");
        assert!(json.contains("\"command\": \"synchrobench --quick --json out.json\""));
        assert!(json.contains("\"scenario\": \"4a-put\""));
        assert!(json.contains("\"mops\": 0.250000"));
        assert!(json.contains("\"offheap_key_derefs\": 5"));
        assert!(json.contains("\"freelist_lock_acquires\": 6"));
        assert!(json.contains("\"magazine_hits\": 7"));
        assert!(json.contains("\"scan_chunk_batches\": 8"));
        assert!(json.contains("\"scan_revalidations\": 9"));
        assert!(json.contains("\"scan_buffer_reuses\": 10"));
        assert!(json.contains("\"class_stack_pushes\": 11"));
        assert!(json.contains("\"class_stack_pops\": 12"));
        assert!(json.contains("\"cas_retries\": 13"));
        assert!(json.contains("\"lockfree_refills\": 14"));
        assert!(json.contains("\"reservoir_takes\": 15"));
        assert!(json.contains("\"reservoir_returns\": 16"));
        assert!(json.contains("\"reservoir_cas_retries\": 17"));
        assert!(json.contains("\"reservoir_steals\": 18"));
        assert!(json.contains("\"robustness\": null"));
        // Balanced braces/brackets: crude but effective shape check for a
        // hand-rolled encoder.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces:\n{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn budget_counters_flow_through_reports() {
        let mut s = Summary::new();
        s.push(Row {
            scenario: "chaos".into(),
            bench: "OakMap".into(),
            heap_bytes: 0,
            direct_bytes: 1 << 20,
            threads: 4,
            shards: 1,
            final_size: 10,
            mops: 0.1,
            note: String::new(),
            robustness: Some(RobustnessStats {
                op_retries: 11,
                deadline_exceeded: 12,
                write_sheds: 13,
                scan_sheds: 14,
                ..RobustnessStats::default()
            }),
        });
        let csv = s.to_csv();
        assert!(csv.contains(",11,12,13,14,0,0,0,0,0,0,0,0,0,0,0\n"));
        let json = s.to_json("chaos --seed 1");
        assert!(json.contains("\"op_retries\": 11"));
        assert!(json.contains("\"deadline_exceeded\": 12"));
        assert!(json.contains("\"write_sheds\": 13"));
        assert!(json.contains("\"scan_sheds\": 14"));
        assert!(s
            .to_table()
            .contains("deadlines=12 write-sheds=13 scan-sheds=14]"));
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn human_bytes_formats() {
        assert_eq!(human_bytes(0), "0");
        assert_eq!(human_bytes(1 << 30), "1g");
        assert_eq!(human_bytes(100 << 20), "100m");
        assert_eq!(human_bytes(1234), "1234");
    }
}
