//! summary.csv-style reporting, following the artifact appendix layout:
//!
//! ```text
//! Scenario, Bench, Heap size, Direct Mem, #Threads, Shards, Final Size, Throughput
//! ```

use std::fmt::Write as _;

/// One row of the summary table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Scenario label, e.g. `4a-put`.
    pub scenario: String,
    /// Solution name, e.g. `OakMap`.
    pub bench: String,
    /// Simulated on-heap budget (bytes; 0 = unbounded).
    pub heap_bytes: u64,
    /// Off-heap budget (bytes; 0 = none).
    pub direct_bytes: u64,
    /// Worker threads.
    pub threads: usize,
    /// Shards behind the solution (1 for unsharded maps).
    pub shards: usize,
    /// Map size after ingestion.
    pub final_size: usize,
    /// Millions of operations per second (artifact unit).
    pub mops: f64,
    /// Free-form note (e.g. `OOM`).
    pub note: String,
    /// Contention / failure counters from the solution's off-heap pool,
    /// when the solution has one (Oak adapters report these).
    pub robustness: Option<RobustnessStats>,
}

/// Contention and failure counters surfaced next to throughput, so a run
/// that looked fast but aborted locks or dropped allocations is visible in
/// the report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RobustnessStats {
    /// Header-lock backoff rounds summed over all acquisitions.
    pub lock_retries: u64,
    /// Lock acquisitions abandoned after the bounded budget.
    pub contended_aborts: u64,
    /// Allocation requests that returned an error.
    pub failed_allocs: u64,
    /// Values poisoned by the compute panic guard.
    pub poisoned_values: u64,
    /// Operations that surfaced out-of-memory after emergency reclamation.
    pub oom_failures: u64,
    /// Emergency reclamation passes triggered by pool exhaustion.
    pub emergency_reclaims: u64,
    /// External fragmentation of free pool space at snapshot time, as a
    /// rounded percentage (fraction of free bytes outside the largest
    /// free segment; kept integral so the struct stays `Eq`).
    pub fragmentation_pct: u64,
}

impl From<oak_mempool::PoolStats> for RobustnessStats {
    fn from(s: oak_mempool::PoolStats) -> Self {
        RobustnessStats {
            lock_retries: s.lock_retries,
            contended_aborts: s.contended_aborts,
            failed_allocs: s.failed_allocs,
            poisoned_values: s.poisoned_values,
            oom_failures: s.oom_failures,
            emergency_reclaims: s.emergency_reclaims,
            fragmentation_pct: (s.fragmentation() * 100.0).round() as u64,
        }
    }
}

/// Accumulates rows and renders the CSV.
#[derive(Debug, Default)]
pub struct Summary {
    rows: Vec<Row>,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a row.
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// All rows collected so far.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Renders the artifact-style CSV, extended with the contention /
    /// failure columns (blank for solutions without an off-heap pool).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "Scenario,Bench,Heap size,Direct Mem,#Threads,Shards,Final Size,Throughput,Note,\
             LockRetries,ContendedAborts,FailedAllocs,PoisonedValues,OOMs,Reclaims,FragPct\n",
        );
        for r in &self.rows {
            let rb = match &r.robustness {
                Some(rb) => format!(
                    "{},{},{},{},{},{},{}",
                    rb.lock_retries,
                    rb.contended_aborts,
                    rb.failed_allocs,
                    rb.poisoned_values,
                    rb.oom_failures,
                    rb.emergency_reclaims,
                    rb.fragmentation_pct
                ),
                None => ",,,,,,".to_string(),
            };
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{:.6},{},{}",
                r.scenario,
                r.bench,
                human_bytes(r.heap_bytes),
                human_bytes(r.direct_bytes),
                r.threads,
                r.shards,
                r.final_size,
                r.mops,
                r.note,
                rb
            );
        }
        out
    }

    /// Renders an aligned table for the terminal.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "{:<28} {:<16} {:>9} {:>9} {:>8} {:>7} {:>11} {:>12}  {}\n",
            "Scenario",
            "Bench",
            "Heap",
            "DirectMem",
            "Threads",
            "Shards",
            "FinalSize",
            "Mops/s",
            "Note"
        );
        for r in &self.rows {
            // Contention details only when something actually went wrong:
            // the common all-zero case stays quiet.
            let mut note = r.note.clone();
            if let Some(rb) = &r.robustness {
                if *rb != RobustnessStats::default() {
                    if !note.is_empty() {
                        note.push(' ');
                    }
                    let _ = write!(
                        note,
                        "[retries={} aborts={} failed-allocs={} poisoned={} oom={} reclaims={} frag={}%]",
                        rb.lock_retries,
                        rb.contended_aborts,
                        rb.failed_allocs,
                        rb.poisoned_values,
                        rb.oom_failures,
                        rb.emergency_reclaims,
                        rb.fragmentation_pct
                    );
                }
            }
            let _ = writeln!(
                out,
                "{:<28} {:<16} {:>9} {:>9} {:>8} {:>7} {:>11} {:>12.4}  {}",
                r.scenario,
                r.bench,
                human_bytes(r.heap_bytes),
                human_bytes(r.direct_bytes),
                r.threads,
                r.shards,
                r.final_size,
                r.mops,
                note
            );
        }
        out
    }
}

/// Formats a byte count the way the artifact's config does (`12g`, `100m`).
pub fn human_bytes(b: u64) -> String {
    if b == 0 {
        "0".to_string()
    } else if b.is_multiple_of(1 << 30) {
        format!("{}g", b >> 30)
    } else if b.is_multiple_of(1 << 20) {
        format!("{}m", b >> 20)
    } else {
        format!("{b}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_layout() {
        let mut s = Summary::new();
        s.push(Row {
            scenario: "4a-put".into(),
            bench: "OakMap".into(),
            heap_bytes: 12 << 30,
            direct_bytes: 20 << 30,
            threads: 4,
            shards: 1,
            final_size: 10_000_000,
            mops: 1.5,
            note: String::new(),
            robustness: None,
        });
        let csv = s.to_csv();
        assert!(csv.starts_with("Scenario,Bench,"));
        assert!(csv.contains("#Threads,Shards,Final Size"));
        assert!(csv.contains("4a-put,OakMap,12g,20g,4,1,10000000,1.500000,"));
        assert!(s.to_table().contains("OakMap"));
    }

    #[test]
    fn robustness_columns() {
        let mut s = Summary::new();
        s.push(Row {
            scenario: "4a-put".into(),
            bench: "OakMap".into(),
            heap_bytes: 0,
            direct_bytes: 1 << 30,
            threads: 2,
            shards: 4,
            final_size: 10,
            mops: 0.5,
            note: String::new(),
            robustness: Some(RobustnessStats {
                lock_retries: 7,
                contended_aborts: 1,
                failed_allocs: 2,
                poisoned_values: 3,
                oom_failures: 4,
                emergency_reclaims: 5,
                fragmentation_pct: 6,
            }),
        });
        let csv = s.to_csv();
        assert!(csv.contains(
            "LockRetries,ContendedAborts,FailedAllocs,PoisonedValues,OOMs,Reclaims,FragPct"
        ));
        assert!(csv.contains(",7,1,2,3,4,5,6\n"));
        let table = s.to_table();
        assert!(table
            .contains("[retries=7 aborts=1 failed-allocs=2 poisoned=3 oom=4 reclaims=5 frag=6%]"));
    }

    #[test]
    fn human_bytes_formats() {
        assert_eq!(human_bytes(0), "0");
        assert_eq!(human_bytes(1 << 30), "1g");
        assert_eq!(human_bytes(100 << 20), "100m");
        assert_eq!(human_bytes(1234), "1234");
    }
}
