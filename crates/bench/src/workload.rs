//! Workload generation: keys, values, and operation mixes.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// How keys are drawn from the range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDistribution {
    /// Uniform over the range (the paper's workloads).
    Uniform,
    /// Zipfian with skew parameter `theta` (0 < theta < 1; synchrobench's
    /// skewed option). Popular keys concentrate contention.
    Zipfian {
        /// Skew: 0 approaches uniform; 0.99 is the YCSB default.
        theta: f64,
    },
}

/// Workload parameters, defaulting to the paper's §5.1 setup scaled to a
/// laptop-class host (the constants, not the shapes, change).
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of distinct keys in the accessed range.
    pub key_range: u64,
    /// Serialized key size in bytes (paper: 100).
    pub key_size: usize,
    /// Serialized value size in bytes (paper: 1024).
    pub value_size: usize,
    /// RNG seed (runs are reproducible).
    pub seed: u64,
    /// Key distribution.
    pub distribution: KeyDistribution,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            key_range: 100_000,
            key_size: 100,
            value_size: 1024,
            seed: 0xA110C8ED,
            distribution: KeyDistribution::Uniform,
        }
    }
}

impl WorkloadConfig {
    /// A small configuration for fast Criterion runs.
    pub fn small() -> Self {
        WorkloadConfig {
            key_range: 20_000,
            key_size: 100,
            value_size: 1024,
            seed: 0xA110C8ED,
            distribution: KeyDistribution::Uniform,
        }
    }

    /// Switches the workload to a Zipfian key distribution.
    pub fn zipfian(mut self, theta: f64) -> Self {
        assert!(theta > 0.0 && theta < 1.0, "theta in (0, 1)");
        self.distribution = KeyDistribution::Zipfian { theta };
        self
    }

    /// Encodes key id `i` as a fixed-width sortable byte string of
    /// `key_size` bytes (zero-padded decimal followed by padding).
    pub fn key(&self, i: u64) -> Vec<u8> {
        let mut k = format!("{i:020}").into_bytes();
        k.resize(self.key_size, b'k');
        k
    }

    /// A deterministic value for key id `i`.
    pub fn value(&self, i: u64) -> Vec<u8> {
        let mut v = vec![(i % 251) as u8; self.value_size];
        if self.value_size >= 8 {
            v[..8].copy_from_slice(&i.to_le_bytes());
        }
        v
    }
}

/// Precomputed Zipf state (Gray et al., "Quickly Generating
/// Billion-Record Synthetic Databases").
struct ZipfState {
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl ZipfState {
    fn new(n: u64, theta: f64) -> Self {
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        ZipfState {
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    fn sample(&self, u: f64, n: u64) -> u64 {
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(n - 1)
    }
}

/// Per-thread deterministic key sampler.
pub struct KeySampler {
    rng: SmallRng,
    range: u64,
    zipf: Option<ZipfState>,
}

impl KeySampler {
    /// Creates a sampler for `thread_id` under `config`.
    pub fn new(config: &WorkloadConfig, thread_id: u64) -> Self {
        let zipf = match config.distribution {
            KeyDistribution::Uniform => None,
            KeyDistribution::Zipfian { theta } => Some(ZipfState::new(config.key_range, theta)),
        };
        KeySampler {
            rng: SmallRng::seed_from_u64(
                config.seed ^ (thread_id.wrapping_mul(0x9E3779B97F4A7C15)),
            ),
            range: config.key_range,
            zipf,
        }
    }

    /// Next sampled key id (uniform or Zipfian, per the configuration).
    pub fn next_id(&mut self) -> u64 {
        match &self.zipf {
            None => self.rng.random_range(0..self.range),
            Some(z) => {
                let u: f64 = self.rng.random_range(0.0..1.0);
                // Scramble the rank so hot keys scatter across the range,
                // as YCSB does.
                let rank = z.sample(u, self.range);
                rank.wrapping_mul(0x9E3779B97F4A7C15) % self.range
            }
        }
    }

    /// Next sample in `[0, 100)` (for op-mix percentages).
    pub fn next_pct(&mut self) -> u32 {
        self.rng.random_range(0..100)
    }
}

/// The operation mixes of Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// Fig 4a: 100% put.
    PutOnly,
    /// Fig 4b: 100% in-place 8-byte computeIfPresent / merge.
    ComputeOnly,
    /// Fig 4c: 100% get, zero-copy.
    GetZeroCopy,
    /// Fig 4c: 100% get through the copying (legacy) API.
    GetCopy,
    /// Fig 4d: 95% get / 5% put.
    Mixed95,
    /// Fig 4e: ascending scans of `len` pairs; `stream` picks the API.
    AscendScan {
        /// Entries per scan (paper: 10_000).
        len: usize,
        /// Stream (object-reusing) vs Set API.
        stream: bool,
    },
    /// Fig 4f: descending scans.
    DescendScan {
        /// Entries per scan.
        len: usize,
        /// Stream vs Set API.
        stream: bool,
    },
    /// Bounded range scans (`4g`): ascend over `[key(id), key(id + span))`
    /// from a sampled start key. Unlike [`Mix::AscendScan`], the scan is
    /// bounded by a *key*, not an entry count, so short scans measure the
    /// fixed per-scan cost (positioning + snapshot) and long ones the
    /// per-entry drain cost.
    RangeScan {
        /// Key-id width of the scanned range. Ingestion populates half the
        /// ids, so a scan visits about `span / 2` live entries.
        span: u64,
        /// Stream (object-reusing) vs Set API.
        stream: bool,
    },
    /// Delete-heavy churn: 50% put / 50% remove (exercises the memory
    /// managers; used by the reclamation ablation).
    PutRemoveChurn,
    /// Scans under write churn (`4h`): ~10% of ops are bounded ascending
    /// scans, the rest put/remove churn over the whole key range. The
    /// churn inserts un-ingested keys, so chunks keep splitting while
    /// scans are mid-flight — the scenario that actually exercises the
    /// batch pipeline's revision-stamp revalidation (`scan_revalidations`
    /// is 0 by design in the read-only `4e`/`4f` scans, whose population
    /// is frozen after ingest).
    ScanChurn {
        /// Entries per scan.
        len: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_fixed_width_and_sortable() {
        let c = WorkloadConfig::default();
        let a = c.key(1);
        let b = c.key(2);
        let z = c.key(1_000_000);
        assert_eq!(a.len(), 100);
        assert!(a < b && b < z);
    }

    #[test]
    fn sampler_is_deterministic_per_thread() {
        let c = WorkloadConfig::default();
        let mut s1 = KeySampler::new(&c, 3);
        let mut s2 = KeySampler::new(&c, 3);
        let mut s3 = KeySampler::new(&c, 4);
        let a: Vec<u64> = (0..10).map(|_| s1.next_id()).collect();
        let b: Vec<u64> = (0..10).map(|_| s2.next_id()).collect();
        let c3: Vec<u64> = (0..10).map(|_| s3.next_id()).collect();
        assert_eq!(a, b);
        assert_ne!(a, c3);
        assert!(a.iter().all(|&x| x < c.key_range));
    }

    #[test]
    fn values_embed_key_id() {
        let c = WorkloadConfig::default();
        let v = c.value(42);
        assert_eq!(u64::from_le_bytes(v[..8].try_into().unwrap()), 42);
        assert_eq!(v.len(), 1024);
    }
}

#[cfg(test)]
mod zipf_tests {
    use super::*;

    #[test]
    fn zipf_skews_toward_hot_keys() {
        let c = WorkloadConfig {
            key_range: 10_000,
            ..WorkloadConfig::default()
        }
        .zipfian(0.99);
        let mut s = KeySampler::new(&c, 0);
        let mut counts = std::collections::HashMap::new();
        let n = 100_000;
        for _ in 0..n {
            *counts.entry(s.next_id()).or_insert(0u32) += 1;
        }
        let mut freqs: Vec<u32> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        // The hottest key must dominate (uniform would give ~10/key).
        assert!(freqs[0] > 1_000, "hottest key only {}", freqs[0]);
        // Top-10 keys absorb a large share of traffic.
        let top10: u32 = freqs.iter().take(10).sum();
        assert!(top10 as f64 / n as f64 > 0.25, "top10 share {}", top10);
        // All samples in range.
        assert!(counts.keys().all(|&k| k < c.key_range));
    }

    #[test]
    fn zipf_is_deterministic() {
        let c = WorkloadConfig::small().zipfian(0.8);
        let a: Vec<u64> = {
            let mut s = KeySampler::new(&c, 1);
            (0..20).map(|_| s.next_id()).collect()
        };
        let b: Vec<u64> = {
            let mut s = KeySampler::new(&c, 1);
            (0..20).map(|_| s.next_id()).collect()
        };
        assert_eq!(a, b);
    }
}
