//! Figure 5: the Druid incremental-index case study.
//!
//! Fig 5a: single-thread ingestion throughput vs. dataset size under a
//! fixed RAM budget. Fig 5b: fixed dataset under a varying budget (the
//! legacy index "cannot run with less than 29 GB" — here, the scaled
//! equivalent OOMs). Fig 5c: RAM overhead of each index versus the raw
//! data. Tuples use the current timestamp as the primary dimension, so the
//! workload is spatially local, and all input is generated in advance —
//! both as in §6.

use std::sync::Arc;
use std::time::Instant;

use oak_core::{OakError, OakMapConfig};
use oak_druid::agg::AggSpec;
use oak_druid::index::{IncrementalIndex, LegacyIndex, OakIndex};
use oak_druid::row::{DimKind, DimValue, InputRow, Schema};
use oak_gcheap::{HeapConfig, HeapModel, ManagedHeap};
use oak_mempool::{AllocError, PoolConfig};

use crate::memfig::IngestOutcome;
use crate::report::{Row, Summary};

/// The benchmark schema: two string dimensions, one long dimension, and a
/// rollup tuple of ~1.1 KB (count, sums, min/max, HLL) so tuples are close
/// to the paper's 1.25 KB.
pub fn bench_schema() -> Schema {
    Schema::rollup(
        vec![
            ("page".to_string(), DimKind::Str),
            ("user".to_string(), DimKind::Str),
            ("status".to_string(), DimKind::Long),
        ],
        vec![
            AggSpec::Count,
            AggSpec::LongSum(0),
            AggSpec::DoubleSum(1),
            AggSpec::DoubleMin(1),
            AggSpec::DoubleMax(1),
            AggSpec::HllUniqueDim(1),
        ],
    )
}

/// Generates `n` unique tuples in advance ("in order to measure ingestion
/// performance in isolation, all the input is generated in advance", §6).
/// Timestamps advance monotonically — the paper's spatially-local primary
/// dimension.
pub fn generate_tuples(n: u64) -> Vec<InputRow> {
    (0..n)
        .map(|i| InputRow {
            timestamp: 1_700_000_000_000 + i as i64,
            dims: vec![
                DimValue::Str(format!("page-{}", i % 10_000)),
                DimValue::Str(format!("user-{}", i % 50_000)),
                DimValue::Long((i % 7) as i64),
            ],
            metrics: vec![(i % 100) as f64, (i % 1_000) as f64 / 10.0],
        })
        .collect()
}

/// Approximate raw bytes for `n` ingested tuples: key plus aggregate tuple.
pub fn raw_bytes(schema: &Schema, n: u64) -> u64 {
    n * (schema.key_size() as u64 + schema.agg_state_size() as u64)
}

/// Ingests into I²-Oak under a total RAM budget.
pub fn ingest_oak(rows: &[InputRow], ram_budget: u64) -> (IngestOutcome, OakIndex) {
    let schema = bench_schema();
    let need = ((raw_bytes(&schema, rows.len() as u64) as f64) * 1.2) as usize + (1 << 20);
    let arena = 1 << 20;
    let pool = PoolConfig {
        magazines: false,
        lockfree: false,
        arena_size: arena,
        max_arenas: need.div_ceil(arena).max(2),
        ..Default::default()
    };
    let idx = OakIndex::new(schema, OakMapConfig::default().pool(pool.clone()));
    if (pool.arena_size * pool.max_arenas) as u64 > ram_budget {
        return (IngestOutcome::Oom { ingested: 0 }, idx);
    }
    let start = Instant::now();
    for (i, row) in rows.iter().enumerate() {
        match idx.insert(row) {
            Ok(()) => {}
            Err(OakError::OutOfMemory | OakError::Alloc(AllocError::PoolExhausted)) => {
                return (IngestOutcome::Oom { ingested: i as u64 }, idx);
            }
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    (
        IngestOutcome::Done {
            kops: rows.len() as f64 / start.elapsed().as_secs_f64() / 1_000.0,
        },
        idx,
    )
}

/// Ingests into I²-legacy under a simulated JVM heap of the full budget.
pub fn ingest_legacy(rows: &[InputRow], ram_budget: u64) -> (IngestOutcome, LegacyIndex) {
    let heap = Arc::new(ManagedHeap::new(HeapConfig::with_capacity(ram_budget)));
    let idx = LegacyIndex::with_managed_heap(bench_schema(), heap.clone());
    let start = Instant::now();
    for (i, row) in rows.iter().enumerate() {
        idx.insert(row).expect("legacy insert is infallible");
        // Per-tuple temporaries: dimension objects, boxed aggregator
        // arguments, key builders.
        heap.transient(256);
        if heap.oom() {
            return (IngestOutcome::Oom { ingested: i as u64 }, idx);
        }
    }
    (
        IngestOutcome::Done {
            kops: rows.len() as f64 / start.elapsed().as_secs_f64() / 1_000.0,
        },
        idx,
    )
}

fn push(summary: &mut Summary, scenario: &str, bench: &str, ram: u64, n: u64, o: IngestOutcome) {
    let (mops, note) = match o {
        IngestOutcome::Done { kops } => (kops / 1_000.0, String::new()),
        IngestOutcome::Oom { ingested } => (0.0, format!("OOM after {ingested}")),
    };
    summary.push(Row {
        scenario: scenario.to_string(),
        bench: bench.to_string(),
        heap_bytes: ram,
        direct_bytes: 0,
        threads: 1,
        shards: 1,
        final_size: n as usize,
        mops,
        note,
        robustness: None,
    });
}

/// Figure 5a: throughput vs dataset size at a fixed budget.
pub fn fig5a(ram_budget: u64, tuple_counts: &[u64]) -> Summary {
    let mut s = Summary::new();
    for &n in tuple_counts {
        let rows = generate_tuples(n);
        push(
            &mut s,
            "5a-druid-ingest",
            "I2-Oak",
            ram_budget,
            n,
            ingest_oak(&rows, ram_budget).0,
        );
        push(
            &mut s,
            "5a-druid-ingest",
            "I2-legacy",
            ram_budget,
            n,
            ingest_legacy(&rows, ram_budget).0,
        );
    }
    s
}

/// Figure 5b: throughput vs RAM budget at a fixed dataset.
pub fn fig5b(tuples: u64, budgets: &[u64]) -> Summary {
    let mut s = Summary::new();
    let rows = generate_tuples(tuples);
    for &b in budgets {
        push(
            &mut s,
            "5b-druid-ram",
            "I2-Oak",
            b,
            tuples,
            ingest_oak(&rows, b).0,
        );
        push(
            &mut s,
            "5b-druid-ram",
            "I2-legacy",
            b,
            tuples,
            ingest_legacy(&rows, b).0,
        );
    }
    s
}

/// One Figure 5c sample: raw vs. index footprints after ingesting `n`
/// tuples. Returns `(raw, oak_total, legacy_total)` in bytes.
pub fn fig5c_sample(n: u64) -> (u64, u64, u64) {
    let rows = generate_tuples(n);
    let generous = 8u64 << 30;
    let (_, oak_idx) = ingest_oak(&rows, generous);
    let (_, legacy_idx) = ingest_legacy(&rows, generous);
    let raw = raw_bytes(&bench_schema(), n);
    (
        raw,
        oak_idx.footprint().total(),
        legacy_idx.footprint().total(),
    )
}

/// Figure 5c: RAM utilization rows across tuple counts.
pub fn fig5c(tuple_counts: &[u64]) -> Summary {
    let mut s = Summary::new();
    for &n in tuple_counts {
        let (raw, oak, legacy) = fig5c_sample(n);
        for (bench, bytes) in [("RawData", raw), ("I2-Oak", oak), ("I2-legacy", legacy)] {
            s.push(Row {
                scenario: "5c-druid-overhead".to_string(),
                bench: bench.to_string(),
                heap_bytes: bytes,
                direct_bytes: 0,
                threads: 1,
                shards: 1,
                final_size: n as usize,
                mops: bytes as f64 / raw.max(1) as f64, // overhead ratio
                note: format!("{bytes} bytes"),
                robustness: None,
            });
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oak_and_legacy_agree_on_rollups() {
        let rows = generate_tuples(2_000);
        let (o1, oak) = ingest_oak(&rows, 8 << 30);
        let (o2, legacy) = ingest_legacy(&rows, 8 << 30);
        assert!(matches!(o1, IngestOutcome::Done { .. }));
        assert!(matches!(o2, IngestOutcome::Done { .. }));
        assert_eq!(oak.num_keys(), legacy.num_keys());
        // Total row count via the Count aggregator must equal the input.
        let mut total_oak = 0i64;
        oak.scan(i64::MIN / 2, i64::MAX / 2, &mut |_, vals| {
            if let oak_druid::AggValue::Long(c) = vals[0] {
                total_oak += c;
            }
            true
        });
        let mut total_legacy = 0i64;
        legacy.scan(i64::MIN / 2, i64::MAX / 2, &mut |_, vals| {
            if let oak_druid::AggValue::Long(c) = vals[0] {
                total_legacy += c;
            }
            true
        });
        assert_eq!(total_oak, 2_000);
        assert_eq!(total_legacy, 2_000);
    }

    #[test]
    fn legacy_overhead_exceeds_oak_overhead() {
        // The Figure 5c shape: I²-Oak's overhead over raw is a few percent;
        // I²-legacy's is tens of percent.
        let (raw, oak, legacy) = fig5c_sample(3_000);
        assert!(raw > 0);
        let oak_overhead = oak as f64 / raw as f64;
        let legacy_overhead = legacy as f64 / raw as f64;
        assert!(
            legacy_overhead > oak_overhead,
            "legacy {legacy_overhead:.3} !> oak {oak_overhead:.3}"
        );
        assert!(legacy_overhead > 1.10, "legacy {legacy_overhead:.3}");
    }

    #[test]
    fn legacy_ooms_where_oak_survives() {
        let n = 3_000u64;
        let rows = generate_tuples(n);
        let raw = raw_bytes(&bench_schema(), n);
        let budget = (raw as f64 * 1.5) as u64 + (2 << 20);
        assert!(matches!(
            ingest_oak(&rows, budget).0,
            IngestOutcome::Done { .. }
        ));
        assert!(matches!(
            ingest_legacy(&rows, budget).0,
            IngestOutcome::Oom { .. }
        ));
    }
}
