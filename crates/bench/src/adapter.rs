//! The benchmark-facing adapter over the workspace-wide
//! [`OrderedKvMap`](oak_core::OrderedKvMap)/[`ZeroCopyRead`] traits.
//!
//! Historically this module carried one hand-rolled adapter per
//! competitor; every compared map now implements the shared traits in
//! `oak_core`, so a single generic [`TraitAdapter`] covers the whole
//! artifact competitor set: `OakMap` (ZC and Copy), `ShardedOak-N`,
//! `JavaSkipListMap` (= `Skiplist-OnHeap`), `OffHeapList`
//! (= `Skiplist-OffHeap`), and the MapDB-style B-tree.

use std::hint::black_box;

use oak_core::ZeroCopyRead;

/// Uniform interface for the benchmark driver. All methods take serialized
/// keys/values; `touch`-style reads consume the value bytes through
/// `black_box` so the compiler cannot elide the access.
pub trait MapAdapter: Send + Sync {
    /// Solution name for reports (artifact names).
    fn name(&self) -> &str;

    /// Shard count behind this solution (1 for unsharded maps); surfaced
    /// as a report column.
    fn shards(&self) -> usize {
        1
    }

    /// Insert or replace.
    fn put(&self, key: &[u8], value: &[u8]);

    /// Insert if absent; true when inserted.
    fn put_if_absent(&self, key: &[u8], value: &[u8]) -> bool;

    /// Zero-copy get: touches the value bytes in place.
    fn get_zc(&self, key: &[u8]) -> bool;

    /// Copying get (legacy API shape): materializes the value.
    fn get_copy(&self, key: &[u8]) -> Option<Vec<u8>>;

    /// In-place update of the first 8 value bytes (Fig 4b's workload).
    fn compute8(&self, key: &[u8]) -> bool;

    /// Remove the mapping.
    fn remove(&self, key: &[u8]) -> bool;

    /// Ascending scan of up to `len` pairs from `from`; `stream` selects
    /// the object-reusing API where the solution has one. Returns pairs
    /// visited.
    fn ascend(&self, from: &[u8], len: usize, stream: bool) -> usize;

    /// Descending scan of up to `len` pairs from `from` downward.
    fn descend(&self, from: &[u8], len: usize, stream: bool) -> usize;

    /// Bounded ascending scan over `[lo, hi)` — the `4g` range-scan
    /// workload. Returns pairs visited.
    fn range(&self, lo: &[u8], hi: &[u8], stream: bool) -> usize;

    /// Live mappings.
    fn len(&self) -> usize;

    /// Whether the map is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Off-heap pool statistics, for solutions backed by an
    /// [`oak_mempool`] pool. Used to surface contention / failure counters
    /// in the report; `None` for on-heap competitors.
    fn pool_stats(&self) -> Option<oak_mempool::PoolStats> {
        None
    }
}

pub(crate) fn bump8(buf: &mut [u8]) {
    if buf.len() >= 8 {
        let v = u64::from_le_bytes(buf[..8].try_into().unwrap());
        buf[..8].copy_from_slice(&v.wrapping_add(1).to_le_bytes());
    }
}

/// The one [`MapAdapter`] implementation: wraps any map implementing
/// [`ZeroCopyRead`] (which every compared solution does).
///
/// `copy_mode` redirects `get_zc` through the copying path, producing the
/// `Oak-Copy` legacy curves of Fig 4c on the same underlying map.
pub struct TraitAdapter<M: ZeroCopyRead> {
    name: String,
    map: M,
    copy_mode: bool,
    shards: usize,
}

impl<M: ZeroCopyRead> TraitAdapter<M> {
    /// Wraps `map` under the given report name.
    pub fn new(name: impl Into<String>, map: M) -> Self {
        TraitAdapter {
            name: name.into(),
            map,
            copy_mode: false,
            shards: 1,
        }
    }

    /// Routes `get_zc` through the copying path (Fig 4c `Oak-Copy`).
    #[must_use]
    pub fn copy_mode(mut self) -> Self {
        self.copy_mode = true;
        self
    }

    /// Records the shard count reported next to throughput.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// The wrapped map (for footprint stats).
    pub fn map(&self) -> &M {
        &self.map
    }
}

impl<M: ZeroCopyRead> MapAdapter for TraitAdapter<M> {
    fn name(&self) -> &str {
        &self.name
    }

    fn shards(&self) -> usize {
        self.shards
    }

    fn put(&self, key: &[u8], value: &[u8]) {
        self.map.put(key, value).expect("put");
    }

    fn put_if_absent(&self, key: &[u8], value: &[u8]) -> bool {
        self.map.put_if_absent(key, value).expect("putIfAbsent")
    }

    fn get_zc(&self, key: &[u8]) -> bool {
        if self.copy_mode {
            return self.get_copy(key).is_some();
        }
        self.map.read_with(key, &mut |v| {
            black_box(v.iter().fold(0u64, |a, &b| a.wrapping_add(u64::from(b))));
        })
    }

    fn get_copy(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.map.get_copy(key).inspect(|v| {
            black_box(v.len());
        })
    }

    fn compute8(&self, key: &[u8]) -> bool {
        self.map.compute_if_present(key, &bump8)
    }

    fn remove(&self, key: &[u8]) -> bool {
        self.map.remove(key)
    }

    fn ascend(&self, from: &[u8], len: usize, stream: bool) -> usize {
        let mut n = 0;
        let mut touch = |k: &[u8], v: &[u8]| {
            black_box((k.len(), v.len()));
            n += 1;
            n < len
        };
        if stream {
            self.map.ascend(Some(from), None, &mut touch)
        } else {
            // Set API (per-entry objects) where the solution distinguishes
            // one — the slower Fig 4e variant; baselines fall back to the
            // stream scan.
            self.map.ascend_entries(Some(from), None, &mut touch)
        }
    }

    fn descend(&self, from: &[u8], len: usize, stream: bool) -> usize {
        let mut n = 0;
        let mut touch = |k: &[u8], v: &[u8]| {
            black_box((k.len(), v.len()));
            n += 1;
            n < len
        };
        if stream {
            self.map.descend(Some(from), None, &mut touch)
        } else {
            self.map.descend_entries(Some(from), None, &mut touch)
        }
    }

    fn range(&self, lo: &[u8], hi: &[u8], stream: bool) -> usize {
        let mut n = 0;
        let mut touch = |k: &[u8], v: &[u8]| {
            black_box((k.len(), v.len()));
            n += 1;
            true
        };
        if stream {
            self.map.ascend(Some(lo), Some(hi), &mut touch)
        } else {
            self.map.ascend_entries(Some(lo), Some(hi), &mut touch)
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn pool_stats(&self) -> Option<oak_mempool::PoolStats> {
        self.map.pool_stats()
    }
}
