//! One trait over every compared map, mirroring the artifact's competitor
//! set: `OakMap` (ZC and Copy), `JavaSkipListMap` (= `Skiplist-OnHeap`),
//! `OffHeapList` (= `Skiplist-OffHeap`), and the MapDB-style B-tree.

use std::hint::black_box;
use std::sync::Arc;

use oak_core::{OakMap, OakMapConfig};
use oak_gcheap::{layout, HeapModel, NoopHeap};
use oak_mempool::PoolConfig;
use oak_skiplist::btree::LockedBTreeMap;
use oak_skiplist::offheap::OffHeapSkipListMap;
use oak_skiplist::SkipListMap;

use parking_lot::Mutex;

/// Uniform interface for the benchmark driver. All methods take serialized
/// keys/values; `touch`-style reads consume the value bytes through
/// `black_box` so the compiler cannot elide the access.
pub trait MapAdapter: Send + Sync {
    /// Solution name for reports (artifact names).
    fn name(&self) -> &'static str;

    /// Insert or replace.
    fn put(&self, key: &[u8], value: &[u8]);

    /// Insert if absent; true when inserted.
    fn put_if_absent(&self, key: &[u8], value: &[u8]) -> bool;

    /// Zero-copy get: touches the value bytes in place.
    fn get_zc(&self, key: &[u8]) -> bool;

    /// Copying get (legacy API shape): materializes the value.
    fn get_copy(&self, key: &[u8]) -> Option<Vec<u8>>;

    /// In-place update of the first 8 value bytes (Fig 4b's workload).
    fn compute8(&self, key: &[u8]) -> bool;

    /// Remove the mapping.
    fn remove(&self, key: &[u8]) -> bool;

    /// Ascending scan of up to `len` pairs from `from`; `stream` selects
    /// the object-reusing API where the solution has one. Returns pairs
    /// visited.
    fn ascend(&self, from: &[u8], len: usize, stream: bool) -> usize;

    /// Descending scan of up to `len` pairs from `from` downward.
    fn descend(&self, from: &[u8], len: usize, stream: bool) -> usize;

    /// Live mappings.
    fn len(&self) -> usize;

    /// Whether the map is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Off-heap pool statistics, for solutions backed by an
    /// [`oak_mempool`] pool. Used to surface contention / failure counters
    /// in the report; `None` for on-heap competitors.
    fn pool_stats(&self) -> Option<oak_mempool::PoolStats> {
        None
    }
}

fn bump8(buf: &mut [u8]) {
    if buf.len() >= 8 {
        let v = u64::from_le_bytes(buf[..8].try_into().unwrap());
        buf[..8].copy_from_slice(&v.wrapping_add(1).to_le_bytes());
    }
}

// ---------------------------------------------------------------------------
// Oak
// ---------------------------------------------------------------------------

/// Oak through its zero-copy API (`OakMap` in the artifact).
pub struct OakAdapter {
    map: OakMap,
    /// When set, gets deserialize a copy — the `Oak-Copy` legacy curves.
    copy_mode: bool,
}

impl OakAdapter {
    /// Creates an Oak adapter with the given map configuration.
    pub fn new(config: OakMapConfig) -> Self {
        OakAdapter {
            map: OakMap::with_config(config),
            copy_mode: false,
        }
    }

    /// Same map, but gets go through the copying path (Fig 4c `Oak-Copy`).
    pub fn new_copy_mode(config: OakMapConfig) -> Self {
        OakAdapter {
            map: OakMap::with_config(config),
            copy_mode: true,
        }
    }

    /// The wrapped map (for footprint stats).
    pub fn map(&self) -> &OakMap {
        &self.map
    }
}

impl MapAdapter for OakAdapter {
    fn name(&self) -> &'static str {
        if self.copy_mode {
            "Oak-Copy"
        } else {
            "OakMap"
        }
    }

    fn put(&self, key: &[u8], value: &[u8]) {
        self.map.put(key, value).expect("oak put");
    }

    fn put_if_absent(&self, key: &[u8], value: &[u8]) -> bool {
        self.map.put_if_absent(key, value).expect("oak putIfAbsent")
    }

    fn get_zc(&self, key: &[u8]) -> bool {
        if self.copy_mode {
            return self.get_copy(key).is_some();
        }
        self.map
            .get_with(key, |v| {
                black_box(v.iter().fold(0u64, |a, &b| a.wrapping_add(b as u64)));
            })
            .is_some()
    }

    fn get_copy(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.map.get_copy(key).inspect(|v| {
            black_box(v.len());
        })
    }

    fn compute8(&self, key: &[u8]) -> bool {
        self.map
            .compute_if_present(key, |buf| bump8(buf.as_mut_slice()))
    }

    fn remove(&self, key: &[u8]) -> bool {
        self.map.remove(key)
    }

    fn ascend(&self, from: &[u8], len: usize, stream: bool) -> usize {
        if stream {
            let mut n = 0;
            self.map.for_each_in(Some(from), None, |k, v| {
                black_box((k.len(), v.len()));
                n += 1;
                n < len
            });
            n
        } else {
            let mut n = 0;
            for (k, v) in self.map.iter_range(Some(from), None) {
                black_box(k.len().unwrap_or(0));
                black_box(v.len().unwrap_or(0));
                n += 1;
                if n >= len {
                    break;
                }
            }
            n
        }
    }

    fn descend(&self, from: &[u8], len: usize, stream: bool) -> usize {
        if stream {
            let mut n = 0;
            self.map.for_each_descending(Some(from), None, |k, v| {
                black_box((k.len(), v.len()));
                n += 1;
                n < len
            });
            n
        } else {
            let mut n = 0;
            for (k, v) in self.map.iter_descending(Some(from), None) {
                black_box(k.len().unwrap_or(0));
                black_box(v.len().unwrap_or(0));
                n += 1;
                if n >= len {
                    break;
                }
            }
            n
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn pool_stats(&self) -> Option<oak_mempool::PoolStats> {
        Some(self.map.pool().stats())
    }
}

// ---------------------------------------------------------------------------
// Skiplist-OnHeap (JavaSkipListMap)
// ---------------------------------------------------------------------------

/// The `ConcurrentSkipListMap` baseline: on-heap nodes, boxed keys and
/// values, in-place (locked) 8-byte updates as the paper's merge workload
/// does not grow the object count.
pub struct OnHeapSkipListAdapter {
    list: SkipListMap<Vec<u8>, Mutex<Vec<u8>>>,
}

impl OnHeapSkipListAdapter {
    /// Creates the baseline without heap simulation.
    pub fn new() -> Self {
        Self::with_heap(Arc::new(NoopHeap))
    }

    /// Creates the baseline charging a simulated JVM heap.
    pub fn with_heap(heap: Arc<dyn HeapModel>) -> Self {
        OnHeapSkipListAdapter {
            list: SkipListMap::with_heap(
                heap,
                |k: &Vec<u8>| layout::boxed_bytes(k.len()),
                |v: &Mutex<Vec<u8>>| layout::boxed_bytes(v.lock().len()),
            ),
        }
    }
}

impl Default for OnHeapSkipListAdapter {
    fn default() -> Self {
        Self::new()
    }
}

impl MapAdapter for OnHeapSkipListAdapter {
    fn name(&self) -> &'static str {
        "JavaSkipListMap"
    }

    fn put(&self, key: &[u8], value: &[u8]) {
        self.list.put(key.to_vec(), Mutex::new(value.to_vec()));
    }

    fn put_if_absent(&self, key: &[u8], value: &[u8]) -> bool {
        self.list
            .put_if_absent(key.to_vec(), Mutex::new(value.to_vec()))
    }

    fn get_zc(&self, key: &[u8]) -> bool {
        // No zero-copy API: reading still goes through the boxed value.
        self.list
            .get_with(&key.to_vec(), |v| {
                let g = v.lock();
                black_box(g.iter().fold(0u64, |a, &b| a.wrapping_add(b as u64)));
            })
            .is_some()
    }

    fn get_copy(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.list.get_with(&key.to_vec(), |v| v.lock().clone())
    }

    fn compute8(&self, key: &[u8]) -> bool {
        self.list
            .get_with(&key.to_vec(), |v| bump8(&mut v.lock()))
            .is_some()
    }

    fn remove(&self, key: &[u8]) -> bool {
        self.list.remove(&key.to_vec())
    }

    fn ascend(&self, from: &[u8], len: usize, _stream: bool) -> usize {
        let mut n = 0;
        self.list
            .for_each_range(Some(&from.to_vec()), None, |k, v| {
                black_box((k.len(), v.lock().len()));
                n += 1;
                n < len
            });
        n
    }

    fn descend(&self, from: &[u8], len: usize, _stream: bool) -> usize {
        // One fresh O(log N) lookup per key — the CSLM behaviour.
        let mut n = 0;
        self.list.for_each_descending(&from.to_vec(), None, |k, v| {
            black_box((k.len(), v.lock().len()));
            n += 1;
            n < len
        });
        n
    }

    fn len(&self) -> usize {
        self.list.len()
    }
}

// ---------------------------------------------------------------------------
// Skiplist-OffHeap (OffHeapList)
// ---------------------------------------------------------------------------

/// The `Skiplist-OffHeap` baseline.
pub struct OffHeapSkipListAdapter {
    map: OffHeapSkipListMap,
}

impl OffHeapSkipListAdapter {
    /// Creates the baseline over a pool with the given configuration.
    pub fn new(pool: PoolConfig) -> Self {
        OffHeapSkipListAdapter {
            map: OffHeapSkipListMap::new(pool),
        }
    }

    /// With simulated heap accounting for the on-heap cells.
    pub fn with_heap(pool: PoolConfig, heap: Arc<dyn HeapModel>) -> Self {
        OffHeapSkipListAdapter {
            map: OffHeapSkipListMap::with_heap(pool, heap),
        }
    }

    /// The wrapped map.
    pub fn map(&self) -> &OffHeapSkipListMap {
        &self.map
    }
}

impl MapAdapter for OffHeapSkipListAdapter {
    fn name(&self) -> &'static str {
        "OffHeapList"
    }

    fn put(&self, key: &[u8], value: &[u8]) {
        self.map.put(key, value).expect("offheap put");
    }

    fn put_if_absent(&self, key: &[u8], value: &[u8]) -> bool {
        self.map
            .put_if_absent(key, value)
            .expect("offheap putIfAbsent")
    }

    fn get_zc(&self, key: &[u8]) -> bool {
        self.map
            .get_with(key, |v| {
                black_box(v.iter().fold(0u64, |a, &b| a.wrapping_add(b as u64)));
            })
            .is_some()
    }

    fn get_copy(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.map.get(key)
    }

    fn compute8(&self, key: &[u8]) -> bool {
        self.map
            .compute_if_present(key, |buf| bump8(buf.as_mut_slice()))
    }

    fn remove(&self, key: &[u8]) -> bool {
        self.map.remove(key)
    }

    fn ascend(&self, from: &[u8], len: usize, _stream: bool) -> usize {
        let mut n = 0;
        self.map.for_each_range(Some(from), None, |k, v| {
            black_box((k.len(), v.len()));
            n += 1;
            n < len
        });
        n
    }

    fn descend(&self, from: &[u8], len: usize, _stream: bool) -> usize {
        let mut n = 0;
        self.map.for_each_descending(from, None, |k, v| {
            black_box((k.len(), v.len()));
            n += 1;
            n < len
        });
        n
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn pool_stats(&self) -> Option<oak_mempool::PoolStats> {
        Some(self.map.pool().stats())
    }
}

// ---------------------------------------------------------------------------
// MapDB stand-in
// ---------------------------------------------------------------------------

/// The coarse-locked off-heap B+-tree (MapDB comparator).
pub struct BTreeAdapter {
    tree: LockedBTreeMap,
}

impl BTreeAdapter {
    /// Creates the comparator over a pool with the given configuration.
    pub fn new(pool: PoolConfig) -> Self {
        BTreeAdapter {
            tree: LockedBTreeMap::new(pool),
        }
    }
}

impl MapAdapter for BTreeAdapter {
    fn name(&self) -> &'static str {
        "MapDB-BTree"
    }

    fn put(&self, key: &[u8], value: &[u8]) {
        self.tree.put(key, value).expect("btree put");
    }

    fn put_if_absent(&self, key: &[u8], value: &[u8]) -> bool {
        if self.tree.get_with(key, |_| ()).is_some() {
            return false;
        }
        self.tree.put(key, value).expect("btree put");
        true
    }

    fn get_zc(&self, key: &[u8]) -> bool {
        self.tree
            .get_with(key, |v| {
                black_box(v.iter().fold(0u64, |a, &b| a.wrapping_add(b as u64)));
            })
            .is_some()
    }

    fn get_copy(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.tree.get(key)
    }

    fn compute8(&self, key: &[u8]) -> bool {
        // Read-modify-write under the coarse lock structure: get + put.
        match self.tree.get(key) {
            Some(mut v) => {
                bump8(&mut v);
                self.tree.put(key, &v).expect("btree put");
                true
            }
            None => false,
        }
    }

    fn remove(&self, key: &[u8]) -> bool {
        self.tree.remove(key)
    }

    fn ascend(&self, from: &[u8], len: usize, _stream: bool) -> usize {
        let mut n = 0;
        self.tree.for_each_range(Some(from), None, |k, v| {
            black_box((k.len(), v.len()));
            n += 1;
            n < len
        });
        n
    }

    fn descend(&self, _from: &[u8], _len: usize, _stream: bool) -> usize {
        // MapDB-style trees have no reverse cursor in this stand-in; the
        // paper omits MapDB from the scan plots as well.
        0
    }

    fn len(&self) -> usize {
        self.tree.len()
    }

    fn pool_stats(&self) -> Option<oak_mempool::PoolStats> {
        Some(self.tree.pool().stats())
    }
}
