//! Figure 3: memory efficiency — ingestion throughput under a RAM budget.
//!
//! Fig 3a fixes the RAM budget and sweeps the dataset size; Fig 3b fixes
//! the dataset and sweeps the budget. "Oak and Skiplist-OffHeap split the
//! available memory between the off-heap pool and the heap, allocating the
//! former with just enough resources to host the raw data. Skiplist-OnHeap
//! allocates all the available memory to heap" (§5.1). On-heap solutions
//! run against the [`ManagedHeap`] simulator, so object-layout overhead and
//! stop-the-world collections are actually incurred; a budget the live set
//! cannot fit raises OOM, which is reported in place of a throughput.

use std::sync::Arc;
use std::time::Instant;

use oak_core::{OakMap, OakMapConfig};
use oak_gcheap::{layout, HeapConfig, HeapModel, ManagedHeap};
use oak_mempool::{AllocError, PoolConfig};
use oak_skiplist::offheap::OffHeapSkipListMap;
use oak_skiplist::SkipListMap;

use parking_lot::Mutex;

use crate::report::{RobustnessStats, Row, Summary};
use crate::workload::WorkloadConfig;

/// Result of one ingestion run.
#[derive(Debug, Clone, Copy)]
pub enum IngestOutcome {
    /// Completed: throughput in Kops/s.
    Done {
        /// Ingestion throughput, thousands of inserts per second.
        kops: f64,
    },
    /// The configuration cannot hold the dataset.
    Oom {
        /// Keys ingested before the budget was exceeded.
        ingested: u64,
    },
}

/// Raw bytes needed off-heap for `n` keys (key + value + value header,
/// rounded to the pool granularity).
pub fn raw_bytes(config: &WorkloadConfig, n: u64) -> u64 {
    let per = round8(config.key_size) + round8(config.value_size) + 16;
    n * per as u64
}

fn round8(n: usize) -> usize {
    (n + 7) & !7
}

/// Bytes of short-lived garbage charged per map operation on simulated
/// JVM heaps (temporary boxes, iterators, serialization scratch).
pub const TRANSIENT_PER_OP: usize = 128;

/// Pool sized "just enough … to host the raw data" plus working slack.
fn pool_for(config: &WorkloadConfig, n: u64) -> PoolConfig {
    let need = (raw_bytes(config, n) as f64 * 1.15) as usize + (1 << 20);
    let arena = 1 << 20; // scaled-down arenas (paper: 100 MB)
    PoolConfig {
        magazines: false,
        lockfree: false,
        arena_size: arena,
        max_arenas: need.div_ceil(arena).max(2),
        ..Default::default()
    }
}

/// Deterministic permutation of `[0, n)`: every key id exactly once, in
/// shuffled order (avoids fully sequential insertion while staying
/// reproducible).
pub fn shuffled_ids(n: u64, seed: u64) -> Vec<u64> {
    let mut ids: Vec<u64> = (0..n).collect();
    let mut state = seed | 1;
    for i in (1..ids.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let j = (state % (i as u64 + 1)) as usize;
        ids.swap(i, j);
    }
    ids
}

/// Ingests exactly `n` unique keys into Oak under a total RAM budget.
pub fn ingest_oak(config: &WorkloadConfig, n: u64, ram_budget: u64) -> IngestOutcome {
    ingest_oak_stats(config, n, ram_budget).0
}

/// [`ingest_oak`] plus the pool's robustness counters, so OOM rows in the
/// report carry the failed-allocation count that triggered them.
pub fn ingest_oak_stats(
    config: &WorkloadConfig,
    n: u64,
    ram_budget: u64,
) -> (IngestOutcome, Option<RobustnessStats>) {
    let pool = pool_for(config, n);
    let pool_bytes = (pool.arena_size * pool.max_arenas) as u64;
    if pool_bytes > ram_budget {
        return (IngestOutcome::Oom { ingested: 0 }, None);
    }
    let map = OakMap::with_config(OakMapConfig::default().pool(pool));
    let ids = shuffled_ids(n, config.seed);
    let start = Instant::now();
    for (i, &id) in ids.iter().enumerate() {
        let i = i as u64;
        match map.put_if_absent(&config.key(id), &config.value(id)) {
            Ok(_) => {}
            Err(
                oak_core::OakError::OutOfMemory
                | oak_core::OakError::Alloc(AllocError::PoolExhausted),
            ) => {
                let stats = RobustnessStats::from(map.pool().stats());
                return (IngestOutcome::Oom { ingested: i }, Some(stats));
            }
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    let outcome = IngestOutcome::Done {
        kops: n as f64 / start.elapsed().as_secs_f64() / 1_000.0,
    };
    (outcome, Some(RobustnessStats::from(map.pool().stats())))
}

/// Ingests into the on-heap skiplist under a simulated JVM heap of the
/// full RAM budget.
pub fn ingest_onheap(config: &WorkloadConfig, n: u64, ram_budget: u64) -> IngestOutcome {
    let heap = Arc::new(ManagedHeap::new(HeapConfig::with_capacity(ram_budget)));
    let list: SkipListMap<Vec<u8>, Mutex<Vec<u8>>> = SkipListMap::with_heap(
        heap.clone(),
        |k: &Vec<u8>| layout::boxed_bytes(k.len()),
        |v: &Mutex<Vec<u8>>| layout::boxed_bytes(v.lock().len()),
    );
    let ids = shuffled_ids(n, config.seed);
    let start = Instant::now();
    for (i, &id) in ids.iter().enumerate() {
        list.put_if_absent(config.key(id), Mutex::new(config.value(id)));
        // Short-lived per-operation garbage a JVM would produce.
        heap.transient(TRANSIENT_PER_OP);
        if heap.oom() {
            return IngestOutcome::Oom { ingested: i as u64 };
        }
    }
    IngestOutcome::Done {
        kops: n as f64 / start.elapsed().as_secs_f64() / 1_000.0,
    }
}

/// Ingests into the off-heap skiplist: raw data off-heap, cells and nodes
/// charged to a simulated heap holding the remainder of the budget.
pub fn ingest_offheap(config: &WorkloadConfig, n: u64, ram_budget: u64) -> IngestOutcome {
    ingest_offheap_stats(config, n, ram_budget).0
}

/// [`ingest_offheap`] plus the pool's robustness counters.
pub fn ingest_offheap_stats(
    config: &WorkloadConfig,
    n: u64,
    ram_budget: u64,
) -> (IngestOutcome, Option<RobustnessStats>) {
    let pool = pool_for(config, n);
    let pool_bytes = (pool.arena_size * pool.max_arenas) as u64;
    if pool_bytes >= ram_budget {
        return (IngestOutcome::Oom { ingested: 0 }, None);
    }
    let heap = Arc::new(ManagedHeap::new(HeapConfig::with_capacity(
        ram_budget - pool_bytes,
    )));
    let map = OffHeapSkipListMap::with_heap(pool, heap.clone());
    let stats = |m: &OffHeapSkipListMap| Some(RobustnessStats::from(m.pool().stats()));
    let ids = shuffled_ids(n, config.seed);
    let start = Instant::now();
    for (i, &id) in ids.iter().enumerate() {
        let i = i as u64;
        match map.put_if_absent(&config.key(id), &config.value(id)) {
            Ok(_) => {}
            Err(AllocError::PoolExhausted) => {
                return (IngestOutcome::Oom { ingested: i }, stats(&map));
            }
            Err(e) => panic!("unexpected: {e}"),
        }
        heap.transient(TRANSIENT_PER_OP);
        if heap.oom() {
            return (IngestOutcome::Oom { ingested: i }, stats(&map));
        }
    }
    let outcome = IngestOutcome::Done {
        kops: n as f64 / start.elapsed().as_secs_f64() / 1_000.0,
    };
    let s = stats(&map);
    (outcome, s)
}

fn push_row(
    summary: &mut Summary,
    scenario: &str,
    bench: &str,
    ram: u64,
    n: u64,
    (o, robustness): (IngestOutcome, Option<RobustnessStats>),
) {
    let (mops, note) = match o {
        IngestOutcome::Done { kops } => (kops / 1_000.0, String::new()),
        IngestOutcome::Oom { ingested } => (0.0, format!("OOM after {ingested}")),
    };
    summary.push(Row {
        scenario: scenario.to_string(),
        bench: bench.to_string(),
        heap_bytes: ram,
        direct_bytes: 0,
        threads: 1,
        shards: 1,
        final_size: n as usize,
        mops,
        note,
        robustness,
    });
}

/// Figure 3a: fixed RAM, sweep the dataset size.
pub fn fig3a(config: &WorkloadConfig, ram_budget: u64, dataset_sizes: &[u64]) -> Summary {
    let mut s = Summary::new();
    for &n in dataset_sizes {
        push_row(
            &mut s,
            "3a-ingest",
            "OakMap",
            ram_budget,
            n,
            ingest_oak_stats(config, n, ram_budget),
        );
        push_row(
            &mut s,
            "3a-ingest",
            "JavaSkipListMap",
            ram_budget,
            n,
            (ingest_onheap(config, n, ram_budget), None),
        );
        push_row(
            &mut s,
            "3a-ingest",
            "OffHeapList",
            ram_budget,
            n,
            ingest_offheap_stats(config, n, ram_budget),
        );
    }
    s
}

/// Figure 3b: fixed dataset, sweep the RAM budget.
pub fn fig3b(config: &WorkloadConfig, dataset: u64, budgets: &[u64]) -> Summary {
    let mut s = Summary::new();
    for &b in budgets {
        push_row(
            &mut s,
            "3b-ingest",
            "OakMap",
            b,
            dataset,
            ingest_oak_stats(config, dataset, b),
        );
        push_row(
            &mut s,
            "3b-ingest",
            "JavaSkipListMap",
            b,
            dataset,
            (ingest_onheap(config, dataset, b), None),
        );
        push_row(
            &mut s,
            "3b-ingest",
            "OffHeapList",
            b,
            dataset,
            ingest_offheap_stats(config, dataset, b),
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl() -> WorkloadConfig {
        WorkloadConfig {
            key_range: 10_000,
            key_size: 100,
            value_size: 1024,
            seed: 1,
            distribution: crate::workload::KeyDistribution::Uniform,
        }
    }

    #[test]
    fn oak_fits_more_than_onheap_in_same_ram() {
        // The Figure 3a headline: within a fixed budget, the on-heap
        // skiplist OOMs at a dataset Oak still ingests.
        let config = wl();
        let n = 4_000u64;
        let raw = raw_bytes(&config, n); // ~4.6 MB
        let budget = (raw as f64 * 1.75) as u64;
        match ingest_oak(&config, n, budget) {
            IngestOutcome::Done { kops } => assert!(kops > 0.0),
            IngestOutcome::Oom { ingested } => panic!("oak OOM at {ingested}"),
        }
        // On-heap layout needs ~1.45× raw for data alone, plus index nodes
        // and GC headroom: the same budget must not suffice.
        match ingest_onheap(&config, n, budget) {
            IngestOutcome::Oom { .. } => {}
            IngestOutcome::Done { .. } => {
                panic!("on-heap skiplist unexpectedly fit {n} keys in {budget} bytes")
            }
        }
    }

    #[test]
    fn all_solutions_ingest_with_generous_ram() {
        let config = wl();
        let n = 1_000u64;
        let budget = 1 << 30;
        assert!(matches!(
            ingest_oak(&config, n, budget),
            IngestOutcome::Done { .. }
        ));
        assert!(matches!(
            ingest_onheap(&config, n, budget),
            IngestOutcome::Done { .. }
        ));
        assert!(matches!(
            ingest_offheap(&config, n, budget),
            IngestOutcome::Done { .. }
        ));
    }

    #[test]
    fn fig3a_produces_rows_for_all_solutions() {
        let config = wl();
        let s = fig3a(&config, 64 << 20, &[200, 400]);
        assert_eq!(s.rows().len(), 6);
    }
}
