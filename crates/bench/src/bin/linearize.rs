//! Standalone linearizability-corpus runner: seeded concurrent
//! workloads over [`OakMap`] / [`ShardedOakMap`], every recorded history
//! checked, with the checker's work counters reported per seed batch.
//!
//! ```text
//! linearize [--seeds 200] [--threads 4] [--ops 60] [--keyspace 12]
//!           [--shards 0] [--faults] [--seed-base 0]
//! ```
//!
//! `--shards 0` (default) runs the single map; `--shards N` runs the
//! sharded front-end. `--faults` additionally installs a seeded fault
//! schedule per seed (requires a build with `--features failpoints`;
//! without the feature the flag still runs but injects nothing).
//!
//! Exits non-zero on the first violation, printing the offending seed
//! so it can be replayed under a debugger or turned into a regression
//! schedule.

use oak_core::{OakMap, OakMapConfig, OrderedKvMap, ShardedOakMap};
use oak_linearize::{run_and_check, CheckStats, WorkloadCfg};

/// Holds the process-wide failpoint scenario while fault schedules are in
/// use; a unit guard when the instrumentation is compiled out.
#[cfg(feature = "failpoints")]
fn fault_guard() -> oak_failpoints::Scenario {
    oak_failpoints::scenario()
}
#[cfg(not(feature = "failpoints"))]
fn fault_guard() {}

#[cfg(feature = "failpoints")]
fn install_faults(seed: u64) {
    oak_failpoints::clear();
    oak_failpoints::Schedule::generate(seed, &oak_core::all_failpoint_sites()).install();
}
#[cfg(not(feature = "failpoints"))]
fn install_faults(_seed: u64) {
    eprintln!("warning: --faults ignored; rebuild with --features oak-bench/failpoints");
}

fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn num(args: &[String], flag: &str, default: u64) -> u64 {
    parse_flag(args, flag)
        .map(|s| {
            s.parse()
                .unwrap_or_else(|_| panic!("{flag} takes a number"))
        })
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seeds = num(&args, "--seeds", 200);
    let threads = num(&args, "--threads", 4) as usize;
    let ops = num(&args, "--ops", 60) as usize;
    let keyspace = num(&args, "--keyspace", 12) as usize;
    let shards = num(&args, "--shards", 0) as usize;
    let seed_base = num(&args, "--seed-base", 0);
    let faults = args.iter().any(|a| a == "--faults");

    let config = || {
        OakMapConfig::small()
            .chunk_capacity(8)
            .pool(oak_mempool::PoolConfig {
                magazines: false,
                lockfree: false,
                arena_size: 16 << 10,
                max_arenas: 16,
                ..Default::default()
            })
    };
    let cfg_desc = if shards == 0 {
        "OakMap".to_string()
    } else {
        format!("ShardedOakMap×{shards}")
    };
    println!(
        "# linearize corpus: {seeds} seeds over {cfg_desc}, {threads} threads × {ops} ops, \
         keyspace {keyspace}, faults={faults}"
    );

    let _guard = faults.then(fault_guard);
    let mut totals = CheckStats::default();
    for i in 0..seeds {
        let seed = seed_base + i;
        if faults {
            install_faults(seed);
        }
        let wl = WorkloadCfg {
            threads,
            ops_per_thread: ops,
            keyspace,
            seed,
        };
        let map: Box<dyn OrderedKvMap> = if shards == 0 {
            Box::new(OakMap::with_config(config()))
        } else {
            Box::new(ShardedOakMap::with_config(shards, config()))
        };
        match run_and_check(map.as_ref(), &wl) {
            Ok(stats) => {
                totals.point_ops += stats.point_ops;
                totals.scans += stats.scans;
                totals.keys += stats.keys;
                totals.sequential_keys += stats.sequential_keys;
                totals.greedy_keys += stats.greedy_keys;
                totals.searched_keys += stats.searched_keys;
                totals.states_expanded += stats.states_expanded;
                totals.memo_hits += stats.memo_hits;
            }
            Err(v) => {
                eprintln!("VIOLATION at seed {seed:#x}:\n{v}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "# all {seeds} histories accepted\n\
         point_ops        {}\n\
         scans            {}\n\
         keys             {}\n\
         sequential_keys  {} (per-key fast path)\n\
         greedy_keys      {} (response-order replay)\n\
         searched_keys    {} (full Wing & Gong search)\n\
         states_expanded  {}\n\
         memo_hits        {}",
        totals.point_ops,
        totals.scans,
        totals.keys,
        totals.sequential_keys,
        totals.greedy_keys,
        totals.searched_keys,
        totals.states_expanded,
        totals.memo_hits,
    );
}
