//! Figure 3 runner: memory-efficiency experiments.
//!
//! ```text
//! fig3 a [--ram-mb 256] [--sizes 20000,40000,...]   # fixed RAM, sweep data
//! fig3 b [--size 50000] [--ram-mbs 40,60,80,...]    # fixed data, sweep RAM
//! fig3 all --quick
//! ```
//!
//! Paper scale: 128 GB RAM, 1M–100M keys (3a); 11 GB data, 14–26 GB RAM
//! (3b). Scaled defaults keep the raw-data : budget ratios comparable.

use oak_bench::memfig::{fig3a, fig3b, raw_bytes};
use oak_bench::workload::WorkloadConfig;

fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_list(s: &str) -> Vec<u64> {
    s.split(',').map(|x| x.parse().expect("number")).collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("all");
    let quick = args.iter().any(|a| a == "--quick");

    let workload = WorkloadConfig {
        key_range: u64::MAX, // unused by ingestion sweeps
        key_size: 100,
        value_size: 1024,
        seed: 0xF163,
        distribution: oak_bench::workload::KeyDistribution::Uniform,
    };

    if which == "a" || which == "all" {
        let ram = parse_flag(&args, "--ram-mb")
            .map(|s| s.parse::<u64>().expect("MB"))
            .unwrap_or(if quick { 64 } else { 256 })
            << 20;
        let sizes = parse_flag(&args, "--sizes")
            .map(|s| parse_list(&s))
            .unwrap_or_else(|| {
                // Sweep from well within budget to well past it, mirroring the
                // paper's 1M→100M under 128 GB.
                let full = ram / 1_160; // ≈ keys that fit raw
                vec![
                    full / 16,
                    full / 8,
                    full / 4,
                    full / 2,
                    (full * 3) / 4,
                    full,
                    full * 2,
                ]
            });
        println!(
            "# Figure 3a: ingestion throughput, fixed RAM = {} MB",
            ram >> 20
        );
        println!(
            "# raw data per key ≈ {} B; budget holds ≈ {} keys raw",
            raw_bytes(&workload, 1),
            ram / raw_bytes(&workload, 1)
        );
        let s = fig3a(&workload, ram, &sizes);
        println!("{}", s.to_table());
        println!("{}", s.to_csv());
    }

    if which == "b" || which == "all" {
        let size = parse_flag(&args, "--size")
            .map(|s| s.parse::<u64>().expect("keys"))
            .unwrap_or(if quick { 10_000 } else { 50_000 });
        let raw = raw_bytes(&workload, size);
        let budgets = parse_flag(&args, "--ram-mbs")
            .map(|s| {
                parse_list(&s)
                    .into_iter()
                    .map(|m| m << 20)
                    .collect::<Vec<_>>()
            })
            .unwrap_or_else(|| {
                // The paper sweeps 14→26 GB around an 11 GB dataset:
                // budgets from just under raw to ~2.4× raw.
                (0..7).map(|i| raw + (i * raw) / 4).collect()
            });
        println!(
            "# Figure 3b: ingestion throughput, fixed dataset = {size} keys ({} MB raw)",
            raw >> 20
        );
        let s = fig3b(&workload, size, &budgets);
        println!("{}", s.to_table());
        println!("{}", s.to_csv());
    }
}
