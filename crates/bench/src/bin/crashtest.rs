//! `crashtest` — seeded crash-injection harness for checkpoint/recovery.
//!
//! Each run re-executes this binary as a *writer child* on a fresh
//! directory. The child drives a deterministic put/remove workload on an
//! [`OakMap`] with **file-backed off-heap arenas**, checkpointing after
//! every batch via `oak_durable::checkpoint` and keeping an fsynced
//! acknowledgement log (an `intent` line before each checkpoint, an
//! `acked` line after it returns). A seeded failpoint — chosen across
//! *every* registered site in mempool, oak-core and oak-durable, so
//! kills land mid-allocation, mid-rebalance and mid-checkpoint — is
//! armed with `Action::Panic`, and the child's panic hook converts the
//! injected panic into `std::process::abort()`: a hard crash with no
//! unwinding, no destructors, no buffered-writer flushes.
//!
//! The parent then recovers the directory with `open_or_empty` and
//! verifies the crash contract:
//!
//! * recovery itself reports no corruption (`OakError::Corrupted` /
//!   `RecoveryFailed` are fatal verdicts),
//! * the recovered map's audit ledger balances and nothing leaked,
//! * every recovered key/value is readable via a full scan,
//! * the recovered state is a **prefix-consistent cut** of the child's
//!   acknowledged history (`oak_linearize::recovery::check_recovery`):
//!   it matches some checkpointed state and never rolls back an acked
//!   one, and
//! * when the verdict names a matched attempt, the recovered contents
//!   equal a deterministic replay of the workload up to that attempt,
//!   byte for byte.
//!
//! Children that complete all batches without the failpoint firing count
//! as clean (unkilled) runs and are verified identically.
//!
//! ```text
//! crashtest [--runs N] [--seed-base S] [--batches B] [--batch-size M]
//!           [--dir PATH] [--json PATH] [--quick] [--verbose]
//! ```
//!
//! Exit code 0 iff every run recovers clean. `--quick` is 24 runs for
//! smoke use; the acceptance bar is `--runs 200`.

use std::collections::BTreeMap;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use oak_core::{all_failpoint_sites, OakMap, OakMapConfig};
use oak_durable::{checkpoint, open_or_empty, FAILPOINT_SITES as DURABLE_SITES};
use oak_failpoints::{configure, Action, FirePolicy};
use oak_linearize::recovery::{check_recovery, AckRecord, RecoveryVerdict, StateDigest};
use oak_linearize::SplitMix64;

/// Writer-side map configuration: the default small map over file-backed
/// off-heap arenas (the crash also exercises the mmap backing), with the
/// lock-free allocator on.
fn writer_config(run_dir: &Path) -> OakMapConfig {
    let mut cfg = OakMapConfig::small();
    cfg.pool = cfg
        .pool
        .file_backed(run_dir.join("arenas"))
        .magazines(true)
        .lockfree(true);
    cfg
}

/// Recovery-side configuration. Only fingerprinted (image-shaping)
/// fields must match the writer; the pool backing is a resource knob, so
/// the parent recovers into plain anonymous arenas.
fn recovery_config() -> OakMapConfig {
    OakMapConfig::small()
}

// ---------------------------------------------------------------------
// Deterministic workload, replayable by seed alone.
// ---------------------------------------------------------------------

enum WorkOp {
    Put(Vec<u8>, Vec<u8>),
    Remove(Vec<u8>),
}

struct Workload {
    rng: SplitMix64,
    op: u64,
}

impl Workload {
    fn new(seed: u64) -> Workload {
        Workload {
            rng: SplitMix64(seed ^ 0xc0a1_e5ce_5eed_f00d),
            op: 0,
        }
    }

    /// Next operation given the current shadow state. ~1/8 removes (when
    /// possible); value sizes straddle the small/oversized allocator
    /// tiers so crashes land in both paths.
    fn next(&mut self, shadow: &BTreeMap<Vec<u8>, Vec<u8>>) -> WorkOp {
        self.op += 1;
        if !shadow.is_empty() && self.rng.below(8) == 0 {
            let nth = self.rng.below(shadow.len() as u64) as usize;
            let key = shadow.keys().nth(nth).expect("nth < len").clone();
            return WorkOp::Remove(key);
        }
        let key = format!("key-{:06}", self.rng.below(20_000)).into_bytes();
        let len = if self.rng.below(5) == 0 {
            2049 + self.rng.below(4000) as usize // oversized tier
        } else {
            8 + self.rng.below(240) as usize
        };
        let mut val = format!("v{:08}-", self.op).into_bytes();
        val.resize(len, b'a' + (self.op % 23) as u8);
        WorkOp::Put(key, val)
    }
}

fn apply(shadow: &mut BTreeMap<Vec<u8>, Vec<u8>>, op: &WorkOp) {
    match op {
        WorkOp::Put(k, v) => {
            shadow.insert(k.clone(), v.clone());
        }
        WorkOp::Remove(k) => {
            shadow.remove(k);
        }
    }
}

fn digest_of(shadow: &BTreeMap<Vec<u8>, Vec<u8>>) -> (u64, u64) {
    let mut d = StateDigest::new();
    for (k, v) in shadow {
        d.push(k, v);
    }
    d.finish()
}

/// Replays the workload to the end of attempt `upto` (1-based batch
/// count), returning the expected map contents at that checkpoint.
fn replay_state(seed: u64, batches: u64, batch_size: u64, upto: u64) -> BTreeMap<Vec<u8>, Vec<u8>> {
    let mut shadow = BTreeMap::new();
    let mut wl = Workload::new(seed);
    for _batch in 0..upto.min(batches) {
        for _ in 0..batch_size {
            let op = wl.next(&shadow);
            apply(&mut shadow, &op);
        }
    }
    shadow
}

// ---------------------------------------------------------------------
// Writer child.
// ---------------------------------------------------------------------

fn append_fsync(path: &Path, line: &str) {
    let mut f = OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .expect("ack log open");
    f.write_all(line.as_bytes()).expect("ack log write");
    f.sync_all().expect("ack log fsync");
}

fn child_main(dir: PathBuf, seed: u64, site: String, hit: u64, batches: u64, batch_size: u64) {
    // An injected panic must be a *crash*: no unwinding, no Drop, no
    // BufWriter flushes — abort straight to SIGABRT.
    std::panic::set_hook(Box::new(|_| std::process::abort()));
    if site != "none" {
        configure(&site, Action::Panic, FirePolicy::OnHits(vec![hit]));
    }
    let ckpt_dir = dir.join("ckpt");
    let ack_path = dir.join("ack.log");
    let map = OakMap::with_config(writer_config(&dir));
    let mut shadow = BTreeMap::new();
    let mut wl = Workload::new(seed);
    for attempt in 1..=batches {
        for _ in 0..batch_size {
            let op = wl.next(&shadow);
            match &op {
                WorkOp::Put(k, v) => map.put(k, v).expect("child put"),
                WorkOp::Remove(k) => {
                    map.remove(k);
                }
            }
            apply(&mut shadow, &op);
        }
        let (entries, digest) = digest_of(&shadow);
        append_fsync(
            &ack_path,
            &format!("intent {attempt} {entries} {digest:016x}\n"),
        );
        checkpoint(&map, &ckpt_dir).expect("child checkpoint");
        append_fsync(
            &ack_path,
            &format!("acked {attempt} {entries} {digest:016x}\n"),
        );
    }
    std::process::exit(0);
}

// ---------------------------------------------------------------------
// Parent: kill-point selection, recovery, verification.
// ---------------------------------------------------------------------

fn parse_ack_log(path: &Path) -> Vec<AckRecord> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for line in text.lines() {
        let mut it = line.split_whitespace();
        let (Some(kind), Some(attempt), Some(entries), Some(digest), None) =
            (it.next(), it.next(), it.next(), it.next(), it.next())
        else {
            continue; // torn trailing line — ignore
        };
        let acked = match kind {
            "intent" => false,
            "acked" => true,
            _ => continue,
        };
        let (Ok(attempt), Ok(entries), Ok(digest)) = (
            attempt.parse::<u64>(),
            entries.parse::<u64>(),
            u64::from_str_radix(digest, 16),
        ) else {
            continue;
        };
        out.push(AckRecord {
            attempt,
            entries,
            digest,
            acked,
        });
    }
    out
}

/// Seeded kill-point choice over every registered failpoint site.
/// Durable sites get extra weight so a healthy share of kills land
/// mid-checkpoint; hit counts are scaled to each family's hit rate, and
/// deliberately overshoot sometimes so some children run to completion.
fn choose_kill(rng: &mut SplitMix64) -> (String, u64) {
    let core_pool: Vec<&'static str> = all_failpoint_sites().iter().map(|s| s.name).collect();
    let durable: Vec<&'static str> = DURABLE_SITES.iter().map(|s| s.name).collect();
    if rng.below(100) < 40 {
        let site = durable[rng.below(durable.len() as u64) as usize];
        // Checkpoint-path sites fire a handful of times per run.
        (site.to_string(), 1 + rng.below(24))
    } else {
        let site = core_pool[rng.below(core_pool.len() as u64) as usize];
        // Data-path sites fire thousands of times; a high draw may never
        // be reached, which is a valid clean-completion run.
        (site.to_string(), 1 + rng.below(4000))
    }
}

struct RunOutcome {
    seed: u64,
    site: String,
    hit: u64,
    killed: bool,
    hung: bool,
    verdict: String,
    clean: bool,
    recovered_entries: u64,
    failure: Option<String>,
}

fn run_one(exe: &Path, base_dir: &Path, seed: u64, batches: u64, batch_size: u64) -> RunOutcome {
    let run_dir = base_dir.join(format!("run-{seed:05}"));
    std::fs::remove_dir_all(&run_dir).ok();
    std::fs::create_dir_all(&run_dir).expect("run dir");

    let mut rng = SplitMix64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xcafe);
    let (site, hit) = choose_kill(&mut rng);

    let mut child = Command::new(exe)
        .args([
            "--child",
            "--dir",
            run_dir.to_str().expect("utf8 dir"),
            "--seed",
            &seed.to_string(),
            "--site",
            &site,
            "--hit",
            &hit.to_string(),
            "--batches",
            &batches.to_string(),
            "--batch-size",
            &batch_size.to_string(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn child");

    // Poll with a deadline: a hung child is itself a failure.
    let deadline = Instant::now() + Duration::from_secs(120);
    let (killed, hung) = loop {
        match child.try_wait().expect("wait child") {
            Some(status) => break (!status.success(), false),
            None if Instant::now() > deadline => {
                child.kill().ok();
                child.wait().ok();
                break (true, true);
            }
            None => std::thread::sleep(Duration::from_millis(5)),
        }
    };

    let mut outcome = RunOutcome {
        seed,
        site,
        hit,
        killed,
        hung,
        verdict: String::new(),
        clean: false,
        recovered_entries: 0,
        failure: None,
    };
    if hung {
        outcome.verdict = "hung".into();
        outcome.failure = Some("child exceeded deadline".into());
        return outcome;
    }

    let log = parse_ack_log(&run_dir.join("ack.log"));

    // Recover. Any typed corruption / recovery error is a fatal verdict.
    let recovered = match open_or_empty(&run_dir.join("ckpt"), recovery_config()) {
        Ok(map) => map,
        Err(e) => {
            outcome.verdict = "corruption".into();
            outcome.failure = Some(format!("recovery failed: {e}"));
            return outcome;
        }
    };

    // Ledger gate: live + free == capacity, zero leaks, after replay.
    let report = recovered.audit();
    if !report.pool.balanced || report.leaked_bytes != 0 {
        outcome.verdict = "leak".into();
        outcome.failure = Some(format!("recovered ledger unbalanced: {report:?}"));
        return outcome;
    }

    // Full scan: every recovered pair must be readable; digest it.
    let mut digest = StateDigest::new();
    let mut contents = BTreeMap::new();
    recovered.for_each_in(None, None, |k: &[u8], v: &[u8]| {
        digest.push(k, v);
        contents.insert(k.to_vec(), v.to_vec());
        true
    });
    let (entries, hash) = digest.finish();
    outcome.recovered_entries = entries;

    // Prefix-consistency against the acknowledgement log.
    let verdict = check_recovery(&log, entries, hash);
    outcome.clean = verdict.is_clean();
    outcome.verdict = match verdict {
        RecoveryVerdict::FreshStart => "fresh-start".into(),
        RecoveryVerdict::ConsistentWith { acked: true, .. } => "consistent-acked".into(),
        RecoveryVerdict::ConsistentWith { acked: false, .. } => "consistent-intent".into(),
        RecoveryVerdict::LostAcknowledged { .. } => "lost-acknowledged".into(),
        RecoveryVerdict::Unrecognized { .. } => "unrecognized".into(),
    };
    if !outcome.clean {
        outcome.failure = Some(format!("prefix-consistency verdict: {verdict:?}"));
        return outcome;
    }

    // Digest match names an attempt: replay the workload to that attempt
    // and require byte-for-byte equality — "all keys readable" becomes
    // "all keys readable *and right*".
    if let RecoveryVerdict::ConsistentWith { attempt, .. } = verdict {
        let expected = replay_state(seed, batches, batch_size, attempt);
        if contents != expected {
            outcome.clean = false;
            outcome.verdict = "replay-mismatch".into();
            outcome.failure = Some(format!(
                "digest matched attempt {attempt} but contents differ \
                 ({} recovered vs {} expected entries)",
                contents.len(),
                expected.len()
            ));
            return outcome;
        }
    }

    // The recovered map keeps working.
    if recovered.put(b"__post_recovery_probe", b"ok").is_err()
        || recovered.get_copy(b"__post_recovery_probe").as_deref() != Some(&b"ok"[..])
    {
        outcome.clean = false;
        outcome.verdict = "unusable".into();
        outcome.failure = Some("post-recovery probe write/read failed".into());
    }
    outcome
}

// ---------------------------------------------------------------------
// CLI.
// ---------------------------------------------------------------------

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let num = |name: &str, default: u64| -> u64 {
        flag_value(&args, name)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("bad {name}: {v}")))
            .unwrap_or(default)
    };

    if args.iter().any(|a| a == "--child") {
        child_main(
            PathBuf::from(flag_value(&args, "--dir").expect("--dir")),
            num("--seed", 1),
            flag_value(&args, "--site").unwrap_or_else(|| "none".into()),
            num("--hit", 1),
            num("--batches", 6),
            num("--batch-size", 400),
        );
        return;
    }

    let quick = args.iter().any(|a| a == "--quick");
    let verbose = args.iter().any(|a| a == "--verbose");
    let runs = num("--runs", if quick { 24 } else { 200 });
    let seed_base = num("--seed-base", 1);
    let batches = num("--batches", 6);
    let batch_size = num("--batch-size", 400);
    let base_dir = flag_value(&args, "--dir")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("oak-crashtest-{}", std::process::id()))
        });
    std::fs::create_dir_all(&base_dir).expect("base dir");
    let exe = std::env::current_exe().expect("current_exe");

    let started = Instant::now();
    let mut outcomes = Vec::with_capacity(runs as usize);
    for i in 0..runs {
        let out = run_one(&exe, &base_dir, seed_base + i, batches, batch_size);
        if verbose || !out.clean {
            eprintln!(
                "run seed={} site={} hit={} killed={} verdict={} entries={}{}",
                out.seed,
                out.site,
                out.hit,
                out.killed,
                out.verdict,
                out.recovered_entries,
                out.failure
                    .as_deref()
                    .map(|f| format!(" FAILURE: {f}"))
                    .unwrap_or_default()
            );
        }
        std::fs::remove_dir_all(base_dir.join(format!("run-{:05}", seed_base + i))).ok();
        outcomes.push(out);
    }

    let count = |f: &dyn Fn(&RunOutcome) -> bool| outcomes.iter().filter(|o| f(o)).count();
    let killed = count(&|o| o.killed);
    let completed = count(&|o| !o.killed);
    let corruption = count(&|o| o.verdict == "corruption");
    let leaks = count(&|o| o.verdict == "leak");
    let lost = count(&|o| o.verdict == "lost-acknowledged");
    let unrecognized = count(&|o| o.verdict == "unrecognized" || o.verdict == "replay-mismatch");
    let hung = count(&|o| o.hung);
    let clean = count(&|o| o.clean);
    let pass = clean == outcomes.len();

    let report = format!(
        "{{\n  \"runs\": {},\n  \"killed\": {},\n  \"completed\": {},\n  \
         \"clean\": {},\n  \"fresh_starts\": {},\n  \"consistent_acked\": {},\n  \
         \"consistent_intent\": {},\n  \"corruption_verdicts\": {},\n  \
         \"leak_verdicts\": {},\n  \"lost_acknowledged\": {},\n  \
         \"unrecognized\": {},\n  \"hung\": {},\n  \"elapsed_secs\": {:.1},\n  \
         \"pass\": {}\n}}",
        outcomes.len(),
        killed,
        completed,
        clean,
        count(&|o| o.verdict == "fresh-start"),
        count(&|o| o.verdict == "consistent-acked"),
        count(&|o| o.verdict == "consistent-intent"),
        corruption,
        leaks,
        lost,
        unrecognized,
        hung,
        started.elapsed().as_secs_f64(),
        pass
    );
    println!("{report}");
    if let Some(path) = flag_value(&args, "--json") {
        std::fs::write(&path, format!("{report}\n")).expect("write json report");
    }
    std::fs::remove_dir_all(&base_dir).ok();
    std::process::exit(if pass { 0 } else { 1 });
}
