//! The synchrobench-equivalent runner: executes the Figure 4 scenarios for
//! every competitor and prints a summary.csv-style table (artifact §A.6).
//!
//! ```text
//! synchrobench [--threads 1,2,4] [--size 100000] [--key-size 100]
//!              [--value-size 1024] [--duration-ms 3000] [--scenario 4a-put]
//!              [--csv out.csv] [--json out.json] [--quick] [--grid]
//!              [--no-magazines] [--no-lockfree] [--no-prefix-cache]
//!              [--no-batch-scan]
//! ```
//!
//! Hot-path accelerators are on by default (the Oak pool runs with
//! allocation magazines backed by the lock-free class stacks, Oak maps
//! with the key-prefix cache and the chunk-batch scan pipeline); the
//! `--no-*` flags turn each off for A/B runs. `--json` writes the same
//! rows as the CSV in a machine-readable report that also records the
//! exact command.
//!
//! `--threads` accepts comma lists plus two range forms: `1-4` expands to
//! every count in the span (`1,2,3,4`) and `1..32` to the doubling
//! sequence (`1,2,4,8,16,32`) — the paper's Figure-4 x-axis. `--grid`
//! additionally sweeps the point-op scenarios over OakMap, three
//! ShardedOak widths, and the skiplist baselines, one
//! throughput-vs-threads row per point (defaulting to the 1..32 sweep
//! when `--threads` is not given).

use std::time::Duration;

use oak_bench::report::Summary;
use oak_bench::scenarios::{
    run_alloc_churn, run_grid, run_memory_pressure, run_recovery, run_scenario_configured,
    ALLOC_CHURN_LABEL, GRID_THREADS, MEM_PRESSURE_LABEL, RECOVERY_LABEL, SCENARIOS,
};
use oak_bench::workload::WorkloadConfig;
use oak_mempool::PoolConfig;

fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Expands a `--threads` spec: comma-separated terms, each either a plain
/// count (`8`), an inclusive step-by-one range (`1-4` → 1,2,3,4), or a
/// doubling range (`1..32` → 1,2,4,8,16,32; the upper bound is included
/// even off the doubling lattice, so `1..24` → 1,2,4,8,16,24).
fn parse_threads(spec: &str) -> Vec<usize> {
    let int = |s: &str| -> usize {
        s.trim()
            .parse()
            .unwrap_or_else(|_| panic!("thread count {s:?}"))
    };
    let mut out = Vec::new();
    for term in spec.split(',').filter(|t| !t.trim().is_empty()) {
        if let Some((lo, hi)) = term.split_once("..") {
            let (lo, hi) = (int(lo), int(hi));
            assert!(lo >= 1 && lo <= hi, "bad thread range {term:?}");
            let mut t = lo;
            while t < hi {
                out.push(t);
                t *= 2;
            }
            out.push(hi);
        } else if let Some((lo, hi)) = term.split_once('-') {
            let (lo, hi) = (int(lo), int(hi));
            assert!(lo >= 1 && lo <= hi, "bad thread range {term:?}");
            out.extend(lo..=hi);
        } else {
            out.push(int(term));
        }
    }
    assert!(!out.is_empty(), "empty --threads spec {spec:?}");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let magazines = !args.iter().any(|a| a == "--no-magazines");
    let lockfree = !args.iter().any(|a| a == "--no-lockfree");
    let prefix_cache = !args.iter().any(|a| a == "--no-prefix-cache");
    let batch_scan = !args.iter().any(|a| a == "--no-batch-scan");

    let grid = args.iter().any(|a| a == "--grid");
    let threads: Vec<usize> = match parse_flag(&args, "--threads") {
        Some(spec) => parse_threads(&spec),
        // Grid mode defaults to the Figure-4 doubling sweep; flat runs
        // keep their short defaults.
        None if grid => GRID_THREADS.to_vec(),
        None if quick => vec![1],
        None => vec![1, 2, 4],
    };
    let size: u64 = parse_flag(&args, "--size")
        .map(|s| s.parse().expect("size"))
        .unwrap_or(if quick { 10_000 } else { 100_000 });
    let duration = Duration::from_millis(
        parse_flag(&args, "--duration-ms")
            .map(|s| s.parse().expect("duration"))
            .unwrap_or(if quick { 200 } else { 3_000 }),
    );
    let workload = WorkloadConfig {
        key_range: size,
        key_size: parse_flag(&args, "--key-size")
            .map(|s| s.parse().expect("key size"))
            .unwrap_or(100),
        value_size: parse_flag(&args, "--value-size")
            .map(|s| s.parse().expect("value size"))
            .unwrap_or(1024),
        seed: 0xA110C8ED,
        distribution: match parse_flag(&args, "--zipf") {
            Some(theta) => oak_bench::workload::KeyDistribution::Zipfian {
                theta: theta.parse().expect("zipf theta in (0,1)"),
            },
            None => oak_bench::workload::KeyDistribution::Uniform,
        },
    };
    let only = parse_flag(&args, "--scenario");

    // Enough off-heap budget for the dataset plus put churn.
    let raw = size as u64 * (workload.key_size + workload.value_size + 24) as u64;
    let pool = PoolConfig::with_budget(8 << 20, (raw as usize * 3).max(64 << 20))
        .magazines(magazines)
        .lockfree(lockfree);
    let scan_len = if quick { 1_000 } else { 10_000 };

    let mut summary = Summary::new();
    // The memory-pressure and alloc-churn scenarios are opt-in (via
    // `--scenario mem` / `--scenario alloc`): the former deliberately
    // under-provisions the pool and reports OOM / reclaim / fragmentation
    // columns, the latter runs its own mutex / magazines / lock-free
    // comparison rows.
    if only
        .as_deref()
        .is_some_and(|o| MEM_PRESSURE_LABEL.starts_with(o))
    {
        run_memory_pressure(&threads, &workload, 4096, duration, &mut summary, true);
    }
    if only
        .as_deref()
        .is_some_and(|o| ALLOC_CHURN_LABEL.starts_with(o))
    {
        run_alloc_churn(&threads, &workload, 4096, duration, &mut summary, true);
    }
    // Checkpoint + recovery latency runs by default (it is quick — one
    // scan out, one rebuild in — and reports durability numbers alongside
    // the throughput table).
    if only
        .as_deref()
        .is_none_or(|o| RECOVERY_LABEL.starts_with(o))
    {
        run_recovery(&workload, pool.clone(), 4096, &mut summary, true);
    }
    for scenario in SCENARIOS {
        if let Some(o) = &only {
            if !scenario.label.starts_with(o.as_str()) {
                continue;
            }
        }
        // Scale the full-table scan lengths in quick mode. Only the
        // figure-4 default (10_000) is rescaled — the bounded `4g` range
        // scans keep their key spans, which are short by construction.
        let mut sc = *scenario;
        sc.mix = match sc.mix {
            oak_bench::workload::Mix::AscendScan {
                len: 10_000,
                stream,
            } => oak_bench::workload::Mix::AscendScan {
                len: scan_len,
                stream,
            },
            oak_bench::workload::Mix::DescendScan {
                len: 10_000,
                stream,
            } => oak_bench::workload::Mix::DescendScan {
                len: scan_len,
                stream,
            },
            m => m,
        };
        run_scenario_configured(
            &sc,
            &threads,
            &workload,
            pool.clone(),
            4096,
            duration,
            &mut summary,
            true,
            prefix_cache,
            batch_scan,
        );
    }
    // The Figure-4 thread-scaling curves ride after the flat table so the
    // per-scenario gate rows keep their positions.
    if grid {
        run_grid(
            &threads,
            &workload,
            pool.clone(),
            4096,
            duration,
            &mut summary,
            true,
        );
    }

    println!("{}", summary.to_table());
    if let Some(path) = parse_flag(&args, "--json") {
        // argv[0] is a build-local path; record a stable invocation line.
        let command = std::iter::once("synchrobench")
            .chain(args.iter().skip(1).map(String::as_str))
            .collect::<Vec<_>>()
            .join(" ");
        std::fs::write(&path, summary.to_json(&command)).expect("write json");
        eprintln!("wrote {path}");
    }
    if let Some(path) = parse_flag(&args, "--csv") {
        std::fs::write(&path, summary.to_csv()).expect("write csv");
        eprintln!("wrote {path}");
    } else {
        println!("{}", summary.to_csv());
    }
}

#[cfg(test)]
mod tests {
    use super::parse_threads;

    #[test]
    fn plain_comma_lists_still_parse() {
        assert_eq!(parse_threads("1"), vec![1]);
        assert_eq!(parse_threads("1,2,4"), vec![1, 2, 4]);
        assert_eq!(parse_threads(" 2 , 8 "), vec![2, 8]);
    }

    #[test]
    fn dash_ranges_step_by_one() {
        assert_eq!(parse_threads("1-4"), vec![1, 2, 3, 4]);
        assert_eq!(parse_threads("3-3"), vec![3]);
        assert_eq!(parse_threads("1-32").len(), 32);
    }

    #[test]
    fn dotdot_ranges_double_and_keep_the_bound() {
        assert_eq!(parse_threads("1..32"), vec![1, 2, 4, 8, 16, 32]);
        assert_eq!(parse_threads("1..24"), vec![1, 2, 4, 8, 16, 24]);
        assert_eq!(parse_threads("4..4"), vec![4]);
    }

    #[test]
    fn terms_mix_freely() {
        assert_eq!(parse_threads("1,2,4..32"), vec![1, 2, 4, 8, 16, 32]);
        assert_eq!(parse_threads("1-3,8"), vec![1, 2, 3, 8]);
    }

    #[test]
    #[should_panic(expected = "bad thread range")]
    fn inverted_ranges_are_rejected() {
        parse_threads("8-2");
    }

    #[test]
    #[should_panic(expected = "thread count")]
    fn garbage_is_rejected() {
        parse_threads("two");
    }
}
