//! Chaos soak: mixed workload + seeded fault schedules + ~95% memory
//! budget + deadline pressure, watched by a stall watchdog and closed out
//! by a zero-leak audit.
//!
//! ```text
//! chaos [--seed 42] [--threads 4] [--rounds 8] [--round-ms 500]
//!       [--size 20000] [--deadline-ms 100] [--stall-ms 5000]
//!       [--json out.json] [--quick] [--no-lockfree]
//! ```
//!
//! The pool runs with the lock-free magazine + class-stack layers enabled
//! by default — the soak is exactly the adversarial traffic (fault storms,
//! exhaustion-edge churn, emergency flushes) the lock-free path must
//! survive; `--no-lockfree` reverts to the plain mutex free lists for A/B
//! comparison under identical schedules.
//!
//! Every round installs a fresh failpoint schedule derived from
//! `seed ^ round` over every registered site, so the whole run is
//! reproducible from one seed. Worker threads run a put/get/remove/
//! compute/scan mix through the *budgeted* API — each operation carries a
//! deadline and a jittered-backoff retry policy that also retries
//! injected faults — while the overload controller governs admission at
//! the memory edge. A watchdog thread samples per-thread heartbeats; a
//! thread that stops making progress for `--stall-ms` trips the watchdog
//! and dumps diagnostics.
//!
//! The soak passes only if: no watchdog trip, no unexpected (untyped)
//! error, the post-run auditor reports zero leaked bytes, and the map
//! still serves a clean put/get round-trip. Exit code 0 on pass, 1 on
//! fail; `--json` writes the full accounting either way.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use oak_bench::workload::{KeySampler, WorkloadConfig};
use oak_core::{
    all_failpoint_sites, OakError, OakMap, OakMapConfig, OpBudget, OverloadConfig, RetryPolicy,
};
use oak_failpoints::Schedule;
use oak_mempool::PoolConfig;

fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Per-error-class accounting, shared across workers.
#[derive(Default)]
struct ErrorCounts {
    deadline: AtomicU64,
    contended: AtomicU64,
    overloaded: AtomicU64,
    oom: AtomicU64,
    alloc: AtomicU64,
    unexpected: AtomicU64,
}

impl ErrorCounts {
    fn record(&self, e: OakError) {
        match e {
            OakError::DeadlineExceeded => &self.deadline,
            OakError::Contended(_) => &self.contended,
            OakError::Overloaded => &self.overloaded,
            OakError::OutOfMemory => &self.oom,
            OakError::Alloc(_) => &self.alloc,
            OakError::ConcurrentModification
            | OakError::Corrupted(_)
            | OakError::RecoveryFailed(_) => &self.unexpected,
        }
        .fetch_add(1, Ordering::Relaxed);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed: u64 = parse_flag(&args, "--seed")
        .map(|s| s.parse().expect("seed"))
        .unwrap_or(42);
    let threads: usize = parse_flag(&args, "--threads")
        .map(|s| s.parse().expect("threads"))
        .unwrap_or(4);
    let rounds: u64 = parse_flag(&args, "--rounds")
        .map(|s| s.parse().expect("rounds"))
        .unwrap_or(if quick { 4 } else { 8 });
    let round_ms: u64 = parse_flag(&args, "--round-ms")
        .map(|s| s.parse().expect("round-ms"))
        .unwrap_or(if quick { 250 } else { 1_000 });
    let size: u64 = parse_flag(&args, "--size")
        .map(|s| s.parse().expect("size"))
        .unwrap_or(if quick { 4_000 } else { 20_000 });
    let deadline_ms: u64 = parse_flag(&args, "--deadline-ms")
        .map(|s| s.parse().expect("deadline-ms"))
        .unwrap_or(100);
    let stall_ms: u64 = parse_flag(&args, "--stall-ms")
        .map(|s| s.parse().expect("stall-ms"))
        .unwrap_or(5_000);
    let json_path = parse_flag(&args, "--json");
    let lockfree = !args.iter().any(|a| a == "--no-lockfree");

    let workload = WorkloadConfig {
        key_range: size,
        key_size: 32,
        value_size: 128,
        seed,
        distribution: oak_bench::workload::KeyDistribution::Uniform,
    };

    // Pool sized so a full key range sits at ~95% of the budget: the soak
    // constantly rides the exhaustion edge, exercising the emergency
    // ladder and the overload controller together.
    let raw = size * (workload.key_size + workload.value_size + 24) as u64;
    let budget_bytes = (raw as usize * 100 / 95).max(512 << 10);
    let pool = PoolConfig::with_budget(
        (budget_bytes / 8).next_power_of_two().max(64 << 10),
        budget_bytes,
    )
    .magazines(lockfree)
    .lockfree(lockfree);
    let direct_bytes = (pool.arena_size * pool.max_arenas) as u64;

    let policy = RetryPolicy::default()
        .with_backoff(20, 2_000)
        .with_transient_fault_retry(true);
    let map = Arc::new(OakMap::with_config(
        OakMapConfig::default()
            .chunk_capacity(64)
            .pool(pool)
            .overload(OverloadConfig::standard()),
    ));

    let stop = Arc::new(AtomicBool::new(false));
    let heartbeats: Arc<Vec<AtomicU64>> =
        Arc::new((0..threads).map(|_| AtomicU64::new(0)).collect());
    let errors = Arc::new(ErrorCounts::default());
    let ops_done = Arc::new(AtomicU64::new(0));
    let watchdog_trips = Arc::new(AtomicU64::new(0));

    // Watchdog: samples heartbeats ~4x/s; a worker whose counter has not
    // moved for `stall_ms` counts as stuck — dump diagnostics and trip.
    let watchdog = {
        let stop = stop.clone();
        let heartbeats = heartbeats.clone();
        let trips = watchdog_trips.clone();
        let map = map.clone();
        std::thread::spawn(move || {
            let mut last_seen: Vec<u64> = vec![0; heartbeats.len()];
            let mut last_change: Vec<Instant> = vec![Instant::now(); heartbeats.len()];
            let mut tripped: Vec<bool> = vec![false; heartbeats.len()];
            while !stop.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(250));
                for (i, hb) in heartbeats.iter().enumerate() {
                    let now = hb.load(Ordering::Relaxed);
                    if now != last_seen[i] {
                        last_seen[i] = now;
                        last_change[i] = Instant::now();
                        tripped[i] = false;
                    } else if !tripped[i]
                        && last_change[i].elapsed() >= Duration::from_millis(stall_ms)
                    {
                        tripped[i] = true;
                        trips.fetch_add(1, Ordering::SeqCst);
                        eprintln!(
                            "WATCHDOG: worker {i} stuck at {now} ops for {:?}",
                            last_change[i].elapsed()
                        );
                        eprintln!("  map stats: {:?}", map.stats());
                        eprintln!("  overload: {:?}", map.overload_state());
                        eprintln!(
                            "  failpoints fired so far: {}",
                            oak_failpoints::total_fired()
                        );
                    }
                }
            }
        })
    };

    // Workers: 50% put / 20% get / 15% remove / 10% compute / 5% scan,
    // all through the budgeted API under deadline + backoff + fault-retry.
    let start = Instant::now();
    let mut workers = Vec::new();
    for tid in 0..threads {
        let map = map.clone();
        let stop = stop.clone();
        let heartbeats = heartbeats.clone();
        let errors = errors.clone();
        let ops_done = ops_done.clone();
        let wl = workload.clone();
        workers.push(std::thread::spawn(move || {
            let mut sampler = KeySampler::new(&wl, tid as u64 + 1);
            let mut n = 0u64;
            while !stop.load(Ordering::SeqCst) {
                // Deadline pressure: every 8th operation runs under a
                // micro-deadline, so the cancellation path is continuously
                // exercised against injected delays and contention.
                let deadline = if n % 8 == 0 {
                    Duration::from_micros(150)
                } else {
                    Duration::from_millis(deadline_ms)
                };
                let budget = OpBudget::with_deadline(deadline).with_policy(policy);
                let id = sampler.next_id();
                let key = wl.key(id);
                let pct = sampler.next_pct();
                let result: Result<(), OakError> = if pct < 50 {
                    map.put_budgeted(&key, &wl.value(id), &budget).map(|_| ())
                } else if pct < 70 {
                    map.get_with_budgeted(&key, &budget, |_v| ()).map(|_| ())
                } else if pct < 85 {
                    map.remove_budgeted(&key, &budget).map(|_| ())
                } else if pct < 95 {
                    map.compute_if_present_budgeted(&key, &budget, |v| {
                        let s = v.as_mut_slice();
                        if !s.is_empty() {
                            s[0] = s[0].wrapping_add(1);
                        }
                    })
                    .map(|_| ())
                } else {
                    let mut left = 100u32;
                    map.for_each_in_budgeted(Some(key.as_slice()), None, &budget, |_k, _v| {
                        left -= 1;
                        left > 0
                    })
                    .map(|_| ())
                };
                if let Err(e) = result {
                    errors.record(e);
                }
                n += 1;
                heartbeats[tid].store(n, Ordering::Relaxed);
            }
            ops_done.fetch_add(n, Ordering::Relaxed);
        }));
    }

    // Rounds: rotate a fresh deterministic fault schedule each round.
    let sites = all_failpoint_sites();
    for round in 0..rounds {
        let schedule = Schedule::generate(seed ^ round, &sites);
        oak_failpoints::clear();
        schedule.install();
        eprintln!(
            "round {round}: {} sites armed (seed {seed}), elapsed {:?}",
            schedule.entries.len(),
            start.elapsed()
        );
        std::thread::sleep(Duration::from_millis(round_ms));
    }

    // Finale: faults off, workers drained, then the audit gate.
    oak_failpoints::clear();
    stop.store(true, Ordering::SeqCst);
    for w in workers {
        w.join().expect("worker panicked");
    }
    watchdog.join().expect("watchdog panicked");
    let elapsed = start.elapsed();

    map.drain_quarantine();
    let audit = map.audit();
    let leaked_bytes = audit.leaked_bytes;

    // Usability round-trip: the map must serve clean traffic after the
    // storm. The pool may legitimately sit at the admission edge (the soak
    // deliberately oversubscribes it), so if the controller still refuses
    // writes, make headroom and retry through a full sampling period — the
    // controller's verdict is cached between samples, so a just-freed pool
    // can keep reading Critical for up to `sample_every` write attempts.
    let mut usable = false;
    let probe = b"chaos-probe-key";
    'probe: for attempt in 0..4 {
        for _ in 0..512 {
            if map.put(probe, b"alive").is_ok() {
                usable = map.get_copy(probe).as_deref() == Some(b"alive".as_slice());
                map.remove(probe);
                break 'probe;
            }
        }
        eprintln!(
            "probe attempt {attempt} shed ({:?}); making headroom",
            map.overload_state()
        );
        for i in 0..size / 4 {
            map.remove(&workload.key(i));
        }
        map.drain_quarantine();
    }

    let stats = map.stats();
    let total_ops = ops_done.load(Ordering::Relaxed);
    let trips = watchdog_trips.load(Ordering::SeqCst);
    let unexpected = errors.unexpected.load(Ordering::Relaxed);
    let pass = trips == 0 && leaked_bytes == 0 && unexpected == 0 && usable;

    let mops = total_ops as f64 / elapsed.as_secs_f64() / 1e6;
    eprintln!("---");
    eprintln!(
        "chaos: {total_ops} ops in {elapsed:?} ({mops:.3} Mops/s), {} injected faults",
        oak_failpoints::total_fired()
    );
    eprintln!(
        "errors: deadline={} contended={} overloaded={} oom={} alloc={} unexpected={unexpected}",
        errors.deadline.load(Ordering::Relaxed),
        errors.contended.load(Ordering::Relaxed),
        errors.overloaded.load(Ordering::Relaxed),
        errors.oom.load(Ordering::Relaxed),
        errors.alloc.load(Ordering::Relaxed),
    );
    eprintln!(
        "governance: retries={} deadlines={} write-sheds={} scan-sheds={}",
        stats.pool.op_retries,
        stats.pool.deadline_exceeded,
        stats.pool.overload_sheds,
        stats.pool.scan_sheds
    );
    eprintln!(
        "audit: leaked_bytes={leaked_bytes} quarantined={} watchdog_trips={trips} usable={usable}",
        audit.quarantined_bytes
    );
    eprintln!("verdict: {}", if pass { "PASS" } else { "FAIL" });

    if let Some(path) = json_path {
        let json = format!(
            "{{\n  \"seed\": {seed},\n  \"threads\": {threads},\n  \"rounds\": {rounds},\n  \
             \"round_ms\": {round_ms},\n  \"size\": {size},\n  \"deadline_ms\": {deadline_ms},\n  \
             \"lockfree\": {lockfree},\n  \
             \"direct_bytes\": {direct_bytes},\n  \"elapsed_ms\": {},\n  \"total_ops\": {total_ops},\n  \
             \"mops\": {mops:.6},\n  \"faults_fired\": {},\n  \"errors\": {{\"deadline\": {}, \
             \"contended\": {}, \"overloaded\": {}, \"oom\": {}, \"alloc\": {}, \
             \"unexpected\": {unexpected}}},\n  \"governance\": {{\"op_retries\": {}, \
             \"deadline_exceeded\": {}, \"write_sheds\": {}, \"scan_sheds\": {}}},\n  \
             \"watchdog_trips\": {trips},\n  \"leaked_bytes\": {leaked_bytes},\n  \
             \"quarantined_bytes\": {},\n  \"final_size\": {},\n  \"usable\": {usable},\n  \
             \"pass\": {pass}\n}}\n",
            elapsed.as_millis(),
            oak_failpoints::total_fired(),
            errors.deadline.load(Ordering::Relaxed),
            errors.contended.load(Ordering::Relaxed),
            errors.overloaded.load(Ordering::Relaxed),
            errors.oom.load(Ordering::Relaxed),
            errors.alloc.load(Ordering::Relaxed),
            stats.pool.op_retries,
            stats.pool.deadline_exceeded,
            stats.pool.overload_sheds,
            stats.pool.scan_sheds,
            audit.quarantined_bytes,
            stats.len,
        );
        std::fs::write(&path, json).expect("write json report");
        eprintln!("json report: {path}");
    }

    std::process::exit(if pass { 0 } else { 1 });
}
