//! Figure 5 runner: the Druid incremental-index case study.
//!
//! ```text
//! fig5 a [--ram-mb 128] [--tuples 10000,20000,...]   # throughput vs data
//! fig5 b [--tuples 50000] [--ram-mbs 40,60,...]      # throughput vs RAM
//! fig5 c [--tuples 10000,30000,50000]                # RAM overhead
//! fig5 all --quick
//! ```
//!
//! Paper scale: 1M–7M tuples of 1.25 KB, 25–32 GB RAM, single thread.

use oak_bench::druidfig::{bench_schema, fig5a, fig5b, fig5c, raw_bytes};

fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_list(s: &str) -> Vec<u64> {
    s.split(',').map(|x| x.parse().expect("number")).collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("all");
    let quick = args.iter().any(|a| a == "--quick");
    let per_tuple = raw_bytes(&bench_schema(), 1);
    println!("# tuple raw size ≈ {per_tuple} B (paper: 1.25 KB)");

    if which == "a" || which == "all" {
        let ram = parse_flag(&args, "--ram-mb")
            .map(|s| s.parse::<u64>().expect("MB"))
            .unwrap_or(if quick { 48 } else { 128 })
            << 20;
        let counts = parse_flag(&args, "--tuples")
            .map(|s| parse_list(&s))
            .unwrap_or_else(|| {
                let full = ram / per_tuple;
                vec![full / 8, full / 4, full / 2, (full * 3) / 4, full]
            });
        println!(
            "# Figure 5a: I² ingestion throughput, RAM = {} MB",
            ram >> 20
        );
        let s = fig5a(ram, &counts);
        println!("{}", s.to_table());
        println!("{}", s.to_csv());
    }

    if which == "b" || which == "all" {
        let tuples = parse_flag(&args, "--tuples")
            .map(|s| s.parse::<u64>().expect("tuples"))
            .unwrap_or(if quick { 10_000 } else { 40_000 });
        let raw = raw_bytes(&bench_schema(), tuples);
        let budgets = parse_flag(&args, "--ram-mbs")
            .map(|s| {
                parse_list(&s)
                    .into_iter()
                    .map(|m| m << 20)
                    .collect::<Vec<_>>()
            })
            .unwrap_or_else(|| (0..7).map(|i| raw + (i * raw) / 4).collect());
        println!("# Figure 5b: I² ingestion throughput, dataset = {tuples} tuples");
        let s = fig5b(tuples, &budgets);
        println!("{}", s.to_table());
        println!("{}", s.to_csv());
    }

    if which == "c" || which == "all" {
        let counts = parse_flag(&args, "--tuples")
            .map(|s| parse_list(&s))
            .unwrap_or_else(|| {
                if quick {
                    vec![2_000, 5_000]
                } else {
                    vec![10_000, 20_000, 40_000]
                }
            });
        println!("# Figure 5c: RAM utilization (ratio column = bytes / raw)");
        let s = fig5c(&counts);
        println!("{}", s.to_table());
        println!("{}", s.to_csv());
    }
}
