//! Figure 4 scenario definitions, named like the artifact's `run.sh`.

use std::sync::Arc;
use std::time::Duration;

use oak_core::{OakMapConfig, ShardedOakMap};
use oak_mempool::PoolConfig;
use oak_skiplist::btree::LockedBTreeMap;
use oak_skiplist::offheap::OffHeapSkipListMap;
use oak_skiplist::SkipListMap;
use parking_lot::Mutex;

use crate::adapter::{MapAdapter, TraitAdapter};
use crate::driver::{ingest, sustained};
use crate::report::{RobustnessStats, Row, Summary};
use crate::workload::{Mix, WorkloadConfig};

/// A named Figure-4 scenario.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Artifact-style label (first two characters = the paper figure).
    pub label: &'static str,
    /// Operation mix.
    pub mix: Mix,
}

/// The scenario table from the artifact appendix (§A.7).
pub const SCENARIOS: &[Scenario] = &[
    Scenario {
        label: "4a-put",
        mix: Mix::PutOnly,
    },
    Scenario {
        label: "4b-putIfAbsentComputeIfPresent",
        mix: Mix::ComputeOnly,
    },
    Scenario {
        label: "4c-get-zc",
        mix: Mix::GetZeroCopy,
    },
    Scenario {
        label: "4c-get-copy",
        mix: Mix::GetCopy,
    },
    Scenario {
        label: "4d-95Get5Put",
        mix: Mix::Mixed95,
    },
    Scenario {
        label: "4e-entrySet-ascend",
        mix: Mix::AscendScan {
            len: 10_000,
            stream: false,
        },
    },
    Scenario {
        label: "4e-entryStreamSet-ascend",
        mix: Mix::AscendScan {
            len: 10_000,
            stream: true,
        },
    },
    Scenario {
        label: "4f-entrySet-descend",
        mix: Mix::DescendScan {
            len: 10_000,
            stream: false,
        },
    },
    Scenario {
        label: "4f-entryStreamSet-descend",
        mix: Mix::DescendScan {
            len: 10_000,
            stream: true,
        },
    },
];

/// The default sharded competitor: four hash-routed shards.
pub const SHARDED_DEFAULT: &str = "ShardedOak-4";

/// Which solutions a scenario runs on (Oak-Copy only for `4c-get-copy`,
/// stream scans only for the Oak variants, per the artifact).
pub fn competitors_for(label: &str) -> Vec<&'static str> {
    match label {
        "4c-get-copy" => vec!["Oak-Copy", "JavaSkipListMap", "OffHeapList"],
        l if l.contains("StreamSet") => vec!["OakMap", SHARDED_DEFAULT],
        _ => vec!["OakMap", SHARDED_DEFAULT, "JavaSkipListMap", "OffHeapList"],
    }
}

/// Builds an adapter by artifact name. `ShardedOak-N` builds an N-shard
/// [`ShardedOakMap`] with hash-prefix routing.
pub fn build(name: &str, pool: PoolConfig, chunk_capacity: u32) -> Arc<dyn MapAdapter> {
    let oak_cfg = OakMapConfig::default()
        .chunk_capacity(chunk_capacity)
        .pool(pool.clone());
    if let Some(n) = name.strip_prefix("ShardedOak-") {
        let shards: usize = n.parse().expect("shard count in ShardedOak-N");
        return Arc::new(
            TraitAdapter::new(name, ShardedOakMap::with_config(shards, oak_cfg))
                .with_shards(shards),
        );
    }
    match name {
        "OakMap" => Arc::new(TraitAdapter::new(
            name,
            oak_core::OakMap::with_config(oak_cfg),
        )),
        "Oak-Copy" => {
            Arc::new(TraitAdapter::new(name, oak_core::OakMap::with_config(oak_cfg)).copy_mode())
        }
        "JavaSkipListMap" => Arc::new(TraitAdapter::new(
            name,
            SkipListMap::<Vec<u8>, Mutex<Vec<u8>>>::new(),
        )),
        "OffHeapList" => Arc::new(TraitAdapter::new(name, OffHeapSkipListMap::new(pool))),
        "MapDB-BTree" => Arc::new(TraitAdapter::new(name, LockedBTreeMap::new(pool))),
        other => panic!("unknown competitor {other}"),
    }
}

/// Runs one scenario across `threads` for all competitors, appending rows.
#[allow(clippy::too_many_arguments)]
pub fn run_scenario(
    scenario: &Scenario,
    threads: &[usize],
    workload: &WorkloadConfig,
    pool: PoolConfig,
    chunk_capacity: u32,
    duration: Duration,
    summary: &mut Summary,
    verbose: bool,
) {
    for name in competitors_for(scenario.label) {
        for &t in threads {
            let map = build(name, pool.clone(), chunk_capacity);
            ingest(map.as_ref(), workload);
            let r = sustained(&map, workload, scenario.mix, t, duration);
            if verbose {
                eprintln!(
                    "{} / {} / {} threads: {:.1} Kops/s",
                    scenario.label,
                    name,
                    t,
                    r.kops_per_sec()
                );
            }
            summary.push(Row {
                scenario: scenario.label.to_string(),
                bench: name.to_string(),
                heap_bytes: 0,
                direct_bytes: (pool.arena_size * pool.max_arenas) as u64,
                threads: t,
                shards: map.shards(),
                final_size: r.final_size,
                mops: r.mops_per_sec(),
                note: String::new(),
                robustness: map.pool_stats().map(RobustnessStats::from),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_table_covers_figure_4() {
        let labels: Vec<&str> = SCENARIOS.iter().map(|s| s.label).collect();
        for fig in ["4a", "4b", "4c", "4d", "4e", "4f"] {
            assert!(
                labels.iter().any(|l| l.starts_with(fig)),
                "figure {fig} uncovered"
            );
        }
    }

    #[test]
    fn all_competitors_buildable() {
        for name in [
            "OakMap",
            "Oak-Copy",
            "JavaSkipListMap",
            "OffHeapList",
            "MapDB-BTree",
            "ShardedOak-4",
        ] {
            let m = build(name, PoolConfig::small(), 64);
            m.put(b"k", b"v");
            assert!(m.get_zc(b"k"), "{name}");
            assert_eq!(m.len(), 1);
            let want = if name == "ShardedOak-4" { 4 } else { 1 };
            assert_eq!(m.shards(), want, "{name}");
        }
    }

    #[test]
    fn sharded_competitor_in_every_scan_scenario() {
        for s in SCENARIOS {
            if s.label.starts_with("4e") || s.label.starts_with("4f") {
                assert!(
                    competitors_for(s.label).contains(&SHARDED_DEFAULT),
                    "{} misses the sharded competitor",
                    s.label
                );
            }
        }
    }

    #[test]
    fn smoke_run_one_scenario() {
        let wl = WorkloadConfig {
            key_range: 300,
            key_size: 32,
            value_size: 64,
            seed: 3,
            distribution: crate::workload::KeyDistribution::Uniform,
        };
        let mut summary = Summary::new();
        run_scenario(
            &SCENARIOS[0],
            &[1],
            &wl,
            PoolConfig::small(),
            64,
            Duration::from_millis(20),
            &mut summary,
            false,
        );
        assert_eq!(summary.rows().len(), 4); // four competitors
        assert!(summary.rows().iter().all(|r| r.mops > 0.0));
        assert!(summary
            .rows()
            .iter()
            .any(|r| r.bench == SHARDED_DEFAULT && r.shards == 4));
    }
}
