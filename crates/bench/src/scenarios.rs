//! Figure 4 scenario definitions, named like the artifact's `run.sh`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use oak_core::{OakError, OakMap, OakMapConfig, ShardedOakMap};
use oak_mempool::PoolConfig;
use oak_skiplist::btree::LockedBTreeMap;
use oak_skiplist::offheap::OffHeapSkipListMap;
use oak_skiplist::SkipListMap;
use parking_lot::Mutex;

use crate::adapter::{MapAdapter, TraitAdapter};
use crate::driver::{ingest, sustained};
use crate::report::{RobustnessStats, Row, Summary};
use crate::workload::{KeyDistribution, Mix, WorkloadConfig};

/// A named Figure-4 scenario.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Artifact-style label (first two characters = the paper figure).
    pub label: &'static str,
    /// Operation mix.
    pub mix: Mix,
    /// Key-distribution override: `Some` pins this scenario to a specific
    /// distribution (e.g. the Zipfian hotspot scenario) regardless of the
    /// run's global `--zipf` flag; `None` inherits the run's workload.
    pub dist: Option<KeyDistribution>,
}

impl Scenario {
    /// The run's workload with this scenario's distribution pin applied.
    pub fn workload(&self, base: &WorkloadConfig) -> WorkloadConfig {
        let mut wl = base.clone();
        if let Some(dist) = self.dist {
            wl.distribution = dist;
        }
        wl
    }
}

/// The scenario table from the artifact appendix (§A.7).
pub const SCENARIOS: &[Scenario] = &[
    Scenario {
        label: "4a-put",
        mix: Mix::PutOnly,
        dist: None,
    },
    Scenario {
        label: "4b-putIfAbsentComputeIfPresent",
        mix: Mix::ComputeOnly,
        dist: None,
    },
    Scenario {
        label: "4c-get-zc",
        mix: Mix::GetZeroCopy,
        dist: None,
    },
    Scenario {
        label: "4c-get-copy",
        mix: Mix::GetCopy,
        dist: None,
    },
    Scenario {
        label: "4d-95Get5Put",
        mix: Mix::Mixed95,
        dist: None,
    },
    Scenario {
        label: "4e-entrySet-ascend",
        mix: Mix::AscendScan {
            len: 10_000,
            stream: false,
        },
        dist: None,
    },
    Scenario {
        label: "4e-entryStreamSet-ascend",
        mix: Mix::AscendScan {
            len: 10_000,
            stream: true,
        },
        dist: None,
    },
    Scenario {
        label: "4f-entrySet-descend",
        mix: Mix::DescendScan {
            len: 10_000,
            stream: false,
        },
        dist: None,
    },
    Scenario {
        label: "4f-entryStreamSet-descend",
        mix: Mix::DescendScan {
            len: 10_000,
            stream: true,
        },
        dist: None,
    },
    // Bounded range scans (not in Figure 4; named after the ~live-entry
    // count — ingestion populates half the ids, so span 100 ≈ 50 pairs).
    // Short scans weigh the fixed positioning/snapshot cost, long scans
    // the per-entry drain cost.
    Scenario {
        label: "4g-scan-50",
        mix: Mix::RangeScan {
            span: 100,
            stream: true,
        },
        dist: None,
    },
    Scenario {
        label: "4g-scan-1000",
        mix: Mix::RangeScan {
            span: 2_000,
            stream: true,
        },
        dist: None,
    },
    // Scans racing writers (not in Figure 4): ~10% bounded ascending
    // scans over 45% put / 45% remove churn. Inserting the un-ingested
    // half keeps chunks splitting under the scans, so the ScanRevals
    // column is nonzero here — the read-only 4e/4f scans report 0 by
    // design (their population is frozen after ingest).
    Scenario {
        label: "4h-scan-churn",
        mix: Mix::ScanChurn { len: 1_000 },
        dist: None,
    },
    // Skewed point access (not in Figure 4): the 95/5 mix under a
    // Zipfian hotspot (θ = 0.99, the YCSB default). Hash-prefix routing
    // still spreads the hot head across shards, but per-key contention
    // concentrates — this is where chunk-level locking and the shared
    // reservoir earn their keep relative to uniform keys.
    Scenario {
        label: "4i-zipf-95Get5Put",
        mix: Mix::Mixed95,
        dist: Some(KeyDistribution::Zipfian { theta: 0.99 }),
    },
];

/// The default sharded competitor: four hash-routed shards.
pub const SHARDED_DEFAULT: &str = "ShardedOak-4";

/// Which solutions a scenario runs on (Oak-Copy only for `4c-get-copy`,
/// stream scans only for the Oak variants, per the artifact).
pub fn competitors_for(label: &str) -> Vec<&'static str> {
    match label {
        "4c-get-copy" => vec!["Oak-Copy", "JavaSkipListMap", "OffHeapList"],
        l if l.contains("StreamSet") => vec!["OakMap", SHARDED_DEFAULT],
        _ => vec!["OakMap", SHARDED_DEFAULT, "JavaSkipListMap", "OffHeapList"],
    }
}

/// Builds an adapter by artifact name. `ShardedOak-N` builds an N-shard
/// [`ShardedOakMap`] with hash-prefix routing.
pub fn build(name: &str, pool: PoolConfig, chunk_capacity: u32) -> Arc<dyn MapAdapter> {
    build_configured(name, pool, chunk_capacity, true, true)
}

/// [`build`] with the Oak prefix cache and chunk-batch scan pipeline
/// toggled explicitly (A/B runs; magazines ride in on `pool.magazines`).
/// Non-Oak competitors ignore both flags.
pub fn build_configured(
    name: &str,
    pool: PoolConfig,
    chunk_capacity: u32,
    prefix_cache: bool,
    batch_scan: bool,
) -> Arc<dyn MapAdapter> {
    let oak_cfg = OakMapConfig::default()
        .chunk_capacity(chunk_capacity)
        .prefix_cache(prefix_cache)
        .batch_scan(batch_scan)
        .pool(pool.clone());
    if let Some(n) = name.strip_prefix("ShardedOak-") {
        let shards: usize = n.parse().expect("shard count in ShardedOak-N");
        return Arc::new(
            TraitAdapter::new(name, ShardedOakMap::with_config(shards, oak_cfg))
                .with_shards(shards),
        );
    }
    match name {
        "OakMap" => Arc::new(TraitAdapter::new(
            name,
            oak_core::OakMap::with_config(oak_cfg),
        )),
        "Oak-Copy" => {
            Arc::new(TraitAdapter::new(name, oak_core::OakMap::with_config(oak_cfg)).copy_mode())
        }
        "JavaSkipListMap" => Arc::new(TraitAdapter::new(
            name,
            SkipListMap::<Vec<u8>, Mutex<Vec<u8>>>::new(),
        )),
        "OffHeapList" => Arc::new(TraitAdapter::new(name, OffHeapSkipListMap::new(pool))),
        "MapDB-BTree" => Arc::new(TraitAdapter::new(name, LockedBTreeMap::new(pool))),
        other => panic!("unknown competitor {other}"),
    }
}

/// Runs one scenario across `threads` for all competitors, appending rows.
#[allow(clippy::too_many_arguments)]
pub fn run_scenario(
    scenario: &Scenario,
    threads: &[usize],
    workload: &WorkloadConfig,
    pool: PoolConfig,
    chunk_capacity: u32,
    duration: Duration,
    summary: &mut Summary,
    verbose: bool,
) {
    run_scenario_configured(
        scenario,
        threads,
        workload,
        pool,
        chunk_capacity,
        duration,
        summary,
        verbose,
        true,
        true,
    )
}

/// [`run_scenario`] with the Oak prefix cache and batch-scan pipeline
/// toggled explicitly.
#[allow(clippy::too_many_arguments)]
pub fn run_scenario_configured(
    scenario: &Scenario,
    threads: &[usize],
    workload: &WorkloadConfig,
    pool: PoolConfig,
    chunk_capacity: u32,
    duration: Duration,
    summary: &mut Summary,
    verbose: bool,
    prefix_cache: bool,
    batch_scan: bool,
) {
    // Scenario-pinned distributions (e.g. the 4i Zipfian hotspot) override
    // whatever the run's global flags selected.
    let workload = &scenario.workload(workload);
    for name in competitors_for(scenario.label) {
        for &t in threads {
            let map =
                build_configured(name, pool.clone(), chunk_capacity, prefix_cache, batch_scan);
            ingest(map.as_ref(), workload);
            let r = sustained(&map, workload, scenario.mix, t, duration);
            if verbose {
                eprintln!(
                    "{} / {} / {} threads: {:.1} Kops/s",
                    scenario.label,
                    name,
                    t,
                    r.kops_per_sec()
                );
            }
            summary.push(Row {
                scenario: scenario.label.to_string(),
                bench: name.to_string(),
                heap_bytes: 0,
                direct_bytes: (pool.arena_size * pool.max_arenas) as u64,
                threads: t,
                shards: map.shards(),
                final_size: r.final_size,
                mops: r.mops_per_sec(),
                note: String::new(),
                robustness: map.pool_stats().map(RobustnessStats::from),
            });
        }
    }
}

/// Point-op scenarios swept by `--grid`: the three Figure-4 curves the
/// thread-scaling acceptance gate reads (insert-only, zero-copy read,
/// and the 95/5 mix).
pub const GRID_SCENARIOS: &[&str] = &["4a-put", "4c-get-zc", "4d-95Get5Put"];

/// Competitors swept by `--grid`: the single-map baseline, three shard
/// widths (so the curve shape vs shard count is visible), and the two
/// skiplist baselines.
pub const GRID_COMPETITORS: &[&str] = &[
    "OakMap",
    "ShardedOak-4",
    "ShardedOak-8",
    "ShardedOak-16",
    "JavaSkipListMap",
    "OffHeapList",
];

/// Thread counts `--grid` sweeps when `--threads` is not given: the
/// paper's Figure-4 x-axis.
pub const GRID_THREADS: &[usize] = &[1, 2, 4, 8, 16, 32];

/// Figure-4 grid mode: throughput-vs-threads curves for the point-op
/// scenarios over [`GRID_COMPETITORS`]. Every grid point gets a freshly
/// built and ingested map, exactly like the flat scenario runs — reusing
/// one map across the sweep looked cheaper but lets put churn outrun the
/// quarantine across runs until the pool reports `OutOfMemory` mid-curve.
/// Rows carry `note == "grid"` so downstream tables and CI gates can
/// select the curves without disturbing the flat scenario rows.
pub fn run_grid(
    threads: &[usize],
    workload: &WorkloadConfig,
    pool: PoolConfig,
    chunk_capacity: u32,
    duration: Duration,
    summary: &mut Summary,
    verbose: bool,
) {
    for label in GRID_SCENARIOS {
        let scenario = SCENARIOS
            .iter()
            .find(|s| s.label == *label)
            .expect("grid scenario registered");
        let workload = scenario.workload(workload);
        for name in GRID_COMPETITORS {
            for &t in threads {
                let map = build(name, pool.clone(), chunk_capacity);
                ingest(map.as_ref(), &workload);
                let r = sustained(&map, &workload, scenario.mix, t, duration);
                if verbose {
                    eprintln!(
                        "grid {} / {} / {} threads: {:.1} Kops/s",
                        scenario.label,
                        name,
                        t,
                        r.kops_per_sec()
                    );
                }
                summary.push(Row {
                    scenario: scenario.label.to_string(),
                    bench: name.to_string(),
                    heap_bytes: 0,
                    direct_bytes: (pool.arena_size * pool.max_arenas) as u64,
                    threads: t,
                    shards: map.shards(),
                    final_size: r.final_size,
                    mops: r.mops_per_sec(),
                    note: "grid".to_string(),
                    robustness: map.pool_stats().map(RobustnessStats::from),
                });
            }
        }
    }
}

/// Label of the allocation-churn scenario (opt-in: run it with
/// `--scenario alloc-churn`).
pub const ALLOC_CHURN_LABEL: &str = "alloc-churn";

/// Allocation-churn scenario: every thread alternates put and remove over
/// a private key stripe, so each operation pair allocates and frees one
/// fixed-size value payload. This is the free-list lock's worst case —
/// and the lock-free allocator's best — so the scenario runs the map
/// three times (mutex free list only, thread magazines, magazines backed
/// by the lock-free class stacks) and reports all rows; compare the
/// `FreelistLocks` / `MagazineHits` / `ClassStackPushes` columns. The CI
/// alloc-churn gate asserts the lock-free row's `FreelistLocks` stays
/// ≈ 0 per operation.
pub fn run_alloc_churn(
    threads: &[usize],
    workload: &WorkloadConfig,
    chunk_capacity: u32,
    duration: Duration,
    summary: &mut Summary,
    verbose: bool,
) {
    let raw = workload.key_range * (workload.key_size + workload.value_size + 24) as u64;
    let pool = PoolConfig::with_budget(8 << 20, (raw as usize * 3).max(16 << 20));
    for (magazines, lockfree, bench) in [
        (false, false, "OakMap"),
        (true, false, "OakMap+magazines"),
        (true, true, "OakMap+lockfree"),
    ] {
        let pool = pool.clone().magazines(magazines).lockfree(lockfree);
        for &t in threads {
            let map = Arc::new(OakMap::with_config(
                OakMapConfig::default()
                    .chunk_capacity(chunk_capacity)
                    .pool(pool.clone()),
            ));
            let ops = AtomicU64::new(0);
            let start = Instant::now();
            std::thread::scope(|s| {
                for tid in 0..t {
                    let map = &map;
                    let ops = &ops;
                    s.spawn(move || {
                        // Private stripe: churn stresses the allocator, not
                        // map-level key contention.
                        let stripe = workload.key_range / t.max(1) as u64;
                        let base = stripe * tid as u64;
                        let mut i = 0u64;
                        let mut n = 0u64;
                        while start.elapsed() < duration {
                            let key = workload.key(base + (i % stripe.max(1)));
                            map.put(&key, &workload.value(i)).expect("churn put");
                            map.remove(&key);
                            i += 1;
                            n += 2;
                        }
                        ops.fetch_add(n, Ordering::Relaxed);
                    });
                }
            });
            let elapsed = start.elapsed().as_secs_f64();
            let stats = RobustnessStats::from(map.pool().stats());
            let total = ops.load(Ordering::Relaxed);
            if verbose {
                eprintln!(
                    "{ALLOC_CHURN_LABEL} / {bench} / {t} threads: {total} ops, \
                     {} freelist locks, {} magazine hits, {} stack pushes",
                    stats.freelist_lock_acquires, stats.magazine_hits, stats.class_stack_pushes
                );
            }
            summary.push(Row {
                scenario: ALLOC_CHURN_LABEL.to_string(),
                bench: bench.to_string(),
                heap_bytes: 0,
                direct_bytes: (pool.arena_size * pool.max_arenas) as u64,
                threads: t,
                shards: 1,
                final_size: map.len(),
                mops: total as f64 / elapsed / 1e6,
                note: String::new(),
                robustness: Some(stats),
            });
        }
    }

    // Fourth row: instance churn over the shared lock-free reservoir.
    // Each thread repeatedly builds a small map wired to one [`ArenaPool`],
    // pushes a burst of puts through it (growing the pool via reservoir
    // takes), and drops it (parking every arena back) — the arena hand-off
    // itself is the hot path here, not the byte allocator. The
    // `ReservoirTakes` / `ReservoirReturns` / `ReservoirCasRetries`
    // columns carry the traffic: takes == returns proves the ledger
    // balances, and cas_retries ≈ 0 per take is the evidence that the
    // Treiber-stack reservoir runs mutex-free under churn.
    let arena_size = 64 << 10;
    for &t in threads {
        // Fresh reservoir per row: its cumulative take/return/CAS ledger
        // is the row's contention evidence.
        let reservoir = Arc::new(oak_mempool::ArenaPool::new(arena_size, 256));
        let merged = Mutex::new(oak_mempool::PoolStats::default());
        let ops = AtomicU64::new(0);
        let start = Instant::now();
        std::thread::scope(|s| {
            for tid in 0..t {
                let reservoir = &reservoir;
                let merged = &merged;
                let ops = &ops;
                s.spawn(move || {
                    let mut acc = oak_mempool::PoolStats::default();
                    let mut n = 0u64;
                    let mut round = 0u64;
                    while start.elapsed() < duration {
                        let map = OakMap::with_config(
                            OakMapConfig::default()
                                .chunk_capacity(chunk_capacity)
                                .pool(PoolConfig {
                                    arena_size,
                                    max_arenas: 8,
                                    ..PoolConfig::default()
                                })
                                .shared_arenas(reservoir.clone()),
                        );
                        for i in 0..256u64 {
                            let key = workload.key(tid as u64 * 1_000_003 + round * 257 + i);
                            match map.put(&key, &workload.value(i)) {
                                Ok(()) => n += 1,
                                // A saturated reservoir is a legitimate
                                // outcome at high thread counts.
                                Err(OakError::OutOfMemory | OakError::Alloc(_)) => {}
                                Err(e) => panic!("reservoir churn put: {e}"),
                            }
                        }
                        acc = acc.merged(&map.pool().stats());
                        round += 1;
                    }
                    let mut g = merged.lock();
                    *g = g.merged(&acc);
                    ops.fetch_add(n, Ordering::Relaxed);
                });
            }
        });
        let elapsed = start.elapsed().as_secs_f64();
        let ledger = reservoir.stats();
        assert_eq!(ledger.outstanding, 0, "reservoir churn leaked arenas");
        // Pool-side snapshots are taken while each map is still alive, so
        // the returns (which happen at drop) only show on the reservoir's
        // own ledger — report that, it is also exact across all instances.
        let mut stats = RobustnessStats::from(merged.into_inner());
        stats.reservoir_takes = ledger.taken;
        stats.reservoir_returns = ledger.returned;
        stats.reservoir_cas_retries = ledger.cas_retries;
        stats.reservoir_steals = ledger.lane_steals;
        let total = ops.load(Ordering::Relaxed);
        if verbose {
            eprintln!(
                "{ALLOC_CHURN_LABEL} / OakMap+reservoir / {t} threads: {total} ops, \
                 {} takes, {} returns, {} cas retries, {} steals",
                stats.reservoir_takes,
                stats.reservoir_returns,
                stats.reservoir_cas_retries,
                stats.reservoir_steals
            );
        }
        summary.push(Row {
            scenario: ALLOC_CHURN_LABEL.to_string(),
            bench: "OakMap+reservoir".to_string(),
            heap_bytes: 0,
            direct_bytes: (arena_size * 256) as u64,
            threads: t,
            shards: 1,
            final_size: 0,
            mops: total as f64 / elapsed / 1e6,
            note: String::new(),
            robustness: Some(stats),
        });
    }
}

/// Label of the memory-pressure scenario (not part of the Figure 4 table:
/// run it with `--scenario mem-pressure`).
pub const MEM_PRESSURE_LABEL: &str = "mem-pressure";

/// Memory-pressure scenario: writers churn a working set against a pool
/// deliberately sized below it, so puts exhaust the pool, trigger emergency
/// reclamation, and — once reclamation cannot help — surface
/// [`OakError::OutOfMemory`]. The standard driver panics on any put error,
/// so this scenario runs its own loop that tolerates out-of-memory and
/// reports the OOM / reclaim counts and free-space fragmentation in the
/// robustness columns.
pub fn run_memory_pressure(
    threads: &[usize],
    workload: &WorkloadConfig,
    chunk_capacity: u32,
    duration: Duration,
    summary: &mut Summary,
    verbose: bool,
) {
    // ~55% of the raw working-set footprint: exhaustion is guaranteed once
    // the key range fills, and removals keep reclamation productive.
    let raw = workload.key_range * (workload.key_size + workload.value_size + 24) as u64;
    let budget = ((raw / 2) as usize).max(256 << 10);
    let pool = PoolConfig::with_budget((budget / 4).next_power_of_two().max(64 << 10), budget);
    for &t in threads {
        let map = Arc::new(OakMap::with_config(
            OakMapConfig::default()
                .chunk_capacity(chunk_capacity)
                .pool(pool.clone()),
        ));
        let ops = AtomicU64::new(0);
        let ooms = AtomicU64::new(0);
        let start = Instant::now();
        std::thread::scope(|s| {
            for tid in 0..t {
                let map = &map;
                let ops = &ops;
                let ooms = &ooms;
                s.spawn(move || {
                    let mut id = workload.seed.wrapping_mul(tid as u64 + 1);
                    let mut n = 0u64;
                    let mut oom = 0u64;
                    while start.elapsed() < duration {
                        // xorshift over the key range; 1-in-4 ops removes,
                        // so exhausted space keeps becoming reclaimable.
                        id ^= id << 13;
                        id ^= id >> 7;
                        id ^= id << 17;
                        let key_id = id % workload.key_range;
                        let key = workload.key(key_id);
                        if id.is_multiple_of(4) {
                            map.remove(&key);
                        } else {
                            match map.put(&key, &workload.value(key_id)) {
                                Ok(()) => {}
                                Err(OakError::OutOfMemory | OakError::Alloc(_)) => oom += 1,
                                Err(e) => panic!("unexpected: {e}"),
                            }
                        }
                        n += 1;
                    }
                    ops.fetch_add(n, Ordering::Relaxed);
                    ooms.fetch_add(oom, Ordering::Relaxed);
                });
            }
        });
        let elapsed = start.elapsed().as_secs_f64();
        map.drain_quarantine();
        let stats = RobustnessStats::from(map.pool().stats());
        let total = ops.load(Ordering::Relaxed);
        let oom_seen = ooms.load(Ordering::Relaxed);
        // Post-churn usability: a map that rode the exhaustion edge must
        // still serve clean traffic. One OOM retry is allowed — the probe
        // may land while the pool is legitimately full — but a second
        // failure after draining the quarantine means reclamation broke.
        let probe_key = b"mem-pressure-probe";
        if let Err(first) = map.put(probe_key, b"alive") {
            map.drain_quarantine();
            map.put(probe_key, b"alive").unwrap_or_else(|second| {
                panic!("map unusable after churn: {first}, then {second}")
            });
        }
        assert_eq!(
            map.get_copy(probe_key),
            Some(b"alive".to_vec()),
            "post-churn round-trip failed"
        );
        map.remove(probe_key);
        if verbose {
            eprintln!(
                "{MEM_PRESSURE_LABEL} / OakMap / {t} threads: {total} ops, {oom_seen} OOM, \
                 {} reclaims, frag {}%",
                stats.emergency_reclaims, stats.fragmentation_pct
            );
        }
        summary.push(Row {
            scenario: MEM_PRESSURE_LABEL.to_string(),
            bench: "OakMap".to_string(),
            heap_bytes: 0,
            direct_bytes: (pool.arena_size * pool.max_arenas) as u64,
            threads: t,
            shards: 1,
            final_size: map.len(),
            mops: total as f64 / elapsed / 1e6,
            note: if oom_seen > 0 {
                format!("OOM x{oom_seen}")
            } else {
                String::new()
            },
            robustness: Some(stats),
        });
    }
}

/// Label of the checkpoint/recovery scenario.
pub const RECOVERY_LABEL: &str = "recovery";

/// Checkpoint/recovery latency: builds a map of `workload.key_range`
/// entries, streams a durable checkpoint image to a temporary directory
/// (`oak_durable::checkpoint`), then recovers it into a fresh map
/// (`oak_durable::open`). Two rows are reported — `checkpoint` and
/// `open` — with entries/second in the Mops column and the image shape
/// (chunks, bytes, wall time) in the note. Single-threaded by nature:
/// checkpoint is one consistent scan, recovery one sequential rebuild.
pub fn run_recovery(
    workload: &WorkloadConfig,
    pool: PoolConfig,
    chunk_capacity: u32,
    summary: &mut Summary,
    verbose: bool,
) {
    let dir = std::env::temp_dir().join(format!("oak-bench-recovery-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let config = OakMapConfig::default().chunk_capacity(chunk_capacity);
    let map = OakMap::with_config(config.clone().pool(pool));
    for i in 0..workload.key_range {
        map.put(&workload.key(i), &workload.value(i))
            .expect("recovery scenario fill");
    }
    let entries = map.len();

    let start = Instant::now();
    let stats = oak_durable::checkpoint(&map, &dir).expect("checkpoint");
    let ckpt = start.elapsed();
    let start = Instant::now();
    let recovered = oak_durable::open(&dir, config).expect("open");
    let open = start.elapsed();
    assert_eq!(recovered.len(), entries, "recovery lost entries");

    let mib = stats.bytes as f64 / (1 << 20) as f64;
    for (bench, secs) in [
        ("checkpoint", ckpt.as_secs_f64()),
        ("open", open.as_secs_f64()),
    ] {
        if verbose {
            eprintln!(
                "{RECOVERY_LABEL} / {bench}: {entries} entries, {} chunks, {mib:.1} MiB, \
                 {:.1} ms",
                stats.chunks,
                secs * 1e3
            );
        }
        summary.push(Row {
            scenario: RECOVERY_LABEL.to_string(),
            bench: bench.to_string(),
            heap_bytes: 0,
            direct_bytes: stats.bytes,
            threads: 1,
            shards: 1,
            final_size: entries,
            mops: entries as f64 / secs / 1e6,
            note: format!(
                "{} chunks, {mib:.1} MiB, {:.1} ms",
                stats.chunks,
                secs * 1e3
            ),
            robustness: None,
        });
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_table_covers_figure_4() {
        let labels: Vec<&str> = SCENARIOS.iter().map(|s| s.label).collect();
        for fig in ["4a", "4b", "4c", "4d", "4e", "4f", "4g", "4h"] {
            assert!(
                labels.iter().any(|l| l.starts_with(fig)),
                "figure {fig} uncovered"
            );
        }
    }

    #[test]
    fn all_competitors_buildable() {
        for name in [
            "OakMap",
            "Oak-Copy",
            "JavaSkipListMap",
            "OffHeapList",
            "MapDB-BTree",
            "ShardedOak-4",
        ] {
            let m = build(name, PoolConfig::small(), 64);
            m.put(b"k", b"v");
            assert!(m.get_zc(b"k"), "{name}");
            assert_eq!(m.len(), 1);
            let want = if name == "ShardedOak-4" { 4 } else { 1 };
            assert_eq!(m.shards(), want, "{name}");
        }
    }

    #[test]
    fn sharded_competitor_in_every_scan_scenario() {
        for s in SCENARIOS {
            if s.label.starts_with("4e") || s.label.starts_with("4f") || s.label.starts_with("4g") {
                assert!(
                    competitors_for(s.label).contains(&SHARDED_DEFAULT),
                    "{} misses the sharded competitor",
                    s.label
                );
            }
        }
    }

    #[test]
    fn mem_pressure_reports_robustness_columns() {
        let wl = WorkloadConfig {
            key_range: 2_000,
            key_size: 32,
            value_size: 256,
            seed: 9,
            distribution: crate::workload::KeyDistribution::Uniform,
        };
        let mut summary = Summary::new();
        run_memory_pressure(
            &[2],
            &wl,
            64,
            Duration::from_millis(200),
            &mut summary,
            false,
        );
        assert_eq!(summary.rows().len(), 1);
        let row = &summary.rows()[0];
        assert_eq!(row.scenario, MEM_PRESSURE_LABEL);
        let rb = row.robustness.expect("pool-backed scenario reports stats");
        // The pool is sized below the working set: exhaustion must have been
        // hit, and every exhaustion first goes through emergency reclamation.
        assert!(rb.failed_allocs > 0, "pool never exhausted: {rb:?}");
        assert!(rb.emergency_reclaims > 0, "no reclamation pass: {rb:?}");
        // The CSV row carries the new columns.
        assert!(summary.to_csv().contains("mem-pressure,OakMap,"));
    }

    #[test]
    fn magazines_cut_freelist_locks_10x() {
        // The allocation-churn acceptance criterion: steady alternating
        // alloc/free traffic must take the arena free-list lock at least
        // 10x less often with magazines on than off, because magazines
        // recycle thread-side and only touch the lock on refill/flush.
        let wl = WorkloadConfig {
            key_range: 4_000,
            key_size: 24,
            value_size: 128,
            seed: 5,
            distribution: crate::workload::KeyDistribution::Uniform,
        };
        let mut summary = Summary::new();
        run_alloc_churn(
            &[2],
            &wl,
            64,
            Duration::from_millis(400),
            &mut summary,
            false,
        );
        assert_eq!(summary.rows().len(), 4);
        let off = summary.rows()[0].robustness.expect("stats off");
        let on = summary.rows()[1].robustness.expect("stats on");
        let lf = summary.rows()[2].robustness.expect("stats lockfree");
        assert_eq!(summary.rows()[0].bench, "OakMap");
        assert_eq!(summary.rows()[1].bench, "OakMap+magazines");
        assert_eq!(summary.rows()[2].bench, "OakMap+lockfree");
        // The fourth row churns map instances over a shared lock-free
        // reservoir: arenas must actually flow through it, the ledger
        // must balance exactly, and — the acceptance criterion for the
        // mutex-free reservoir — CAS retries must stay far below one
        // per hand-off (the old mutex serialized every single one).
        assert_eq!(summary.rows()[3].bench, "OakMap+reservoir");
        let rv = summary.rows()[3].robustness.expect("stats reservoir");
        assert!(rv.reservoir_takes > 0, "reservoir never tapped: {rv:?}");
        assert_eq!(
            rv.reservoir_takes, rv.reservoir_returns,
            "reservoir ledger out of balance: {rv:?}"
        );
        assert!(
            rv.reservoir_cas_retries <= rv.reservoir_takes / 2,
            "lock-free reservoir contended: {} retries over {} takes",
            rv.reservoir_cas_retries,
            rv.reservoir_takes
        );
        assert!(on.magazine_hits > 0, "magazines never engaged: {on:?}");
        assert!(lf.magazine_hits > 0, "lockfree magazines idle: {lf:?}");
        // Normalize per operation: the runs execute different op counts.
        let ops_off = summary.rows()[0].mops.max(f64::MIN_POSITIVE);
        let ops_on = summary.rows()[1].mops.max(f64::MIN_POSITIVE);
        let ops_lf = summary.rows()[2].mops.max(f64::MIN_POSITIVE);
        let locks_off = off.freelist_lock_acquires as f64 / ops_off;
        let locks_on = on.freelist_lock_acquires as f64 / ops_on;
        let locks_lf = lf.freelist_lock_acquires as f64 / ops_lf;
        assert!(
            locks_on * 10.0 <= locks_off,
            "magazines saved too little: {} locks/Mop on vs {} off",
            locks_on,
            locks_off
        );
        // The lock-free row must keep the mutex essentially cold: the
        // churn payloads all pad under the magazine cutoff, so refills
        // and surplus flushes route through the class stacks.
        assert!(
            locks_lf <= locks_on,
            "lockfree row hits the mutex more than magazines alone: {} vs {} locks/Mop",
            locks_lf,
            locks_on
        );
    }

    #[test]
    fn range_scan_scenario_feeds_batch_counters() {
        // 4g smoke: batch mode must report chunk-snapshot and buffer-reuse
        // traffic through the robustness columns; per-entry mode must not
        // touch the batch counters at all (the A/B toggle really routes).
        let wl = WorkloadConfig {
            key_range: 600,
            key_size: 32,
            value_size: 64,
            seed: 11,
            distribution: crate::workload::KeyDistribution::Uniform,
        };
        let sc = SCENARIOS
            .iter()
            .find(|s| s.label == "4g-scan-50")
            .expect("4g scenario registered");
        let oak_stats = |batch: bool| {
            let mut summary = Summary::new();
            run_scenario_configured(
                sc,
                &[1],
                &wl,
                PoolConfig::small(),
                64,
                Duration::from_millis(40),
                &mut summary,
                false,
                true,
                batch,
            );
            summary
                .rows()
                .iter()
                .find(|r| r.bench == "OakMap")
                .expect("OakMap row")
                .robustness
                .expect("oak reports pool stats")
        };
        let on = oak_stats(true);
        assert!(
            on.scan_chunk_batches > 0,
            "batch pipeline never engaged: {on:?}"
        );
        assert!(
            on.scan_buffer_reuses > 0,
            "cursor buffers never reused: {on:?}"
        );
        let off = oak_stats(false);
        assert_eq!(
            off.scan_chunk_batches, 0,
            "per-entry mode filled a batch: {off:?}"
        );
        assert_eq!(
            off.scan_buffer_reuses, 0,
            "per-entry mode reused a batch buffer: {off:?}"
        );
    }

    #[test]
    fn scan_churn_scenario_records_revalidations() {
        // The 4h satellite: every checked-in bench row reported
        // `scan_revalidations == 0` because the read-only 4e/4f scans run
        // against a frozen population — chunk revisions only move at
        // freeze/replacement, i.e. during rebalance. 4h interleaves
        // bounded scans with put/remove churn over the whole range, so
        // chunks split mid-scan and batch refills must re-locate. The
        // counter must actually see that traffic.
        let wl = WorkloadConfig {
            key_range: 600,
            key_size: 32,
            value_size: 64,
            seed: 13,
            distribution: crate::workload::KeyDistribution::Uniform,
        };
        let sc = SCENARIOS
            .iter()
            .find(|s| s.label == "4h-scan-churn")
            .expect("4h scenario registered");
        // Splits racing a scan need a writer thread alongside the scanner;
        // on a loaded host the race can take a few rounds to land, so
        // retry short runs instead of one long flaky one.
        let mut revals = 0;
        for _ in 0..5 {
            let mut summary = Summary::new();
            run_scenario_configured(
                sc,
                &[2],
                &wl,
                PoolConfig::small(),
                64,
                Duration::from_millis(150),
                &mut summary,
                false,
                true,
                true,
            );
            let rb = summary
                .rows()
                .iter()
                .find(|r| r.bench == "OakMap")
                .expect("OakMap row")
                .robustness
                .expect("oak reports pool stats");
            assert!(rb.scan_chunk_batches > 0, "scans never batched: {rb:?}");
            revals = rb.scan_revalidations;
            if revals > 0 {
                break;
            }
        }
        assert!(
            revals > 0,
            "churned scans never revalidated a batch: the 4h wiring is dead"
        );
    }

    #[test]
    fn grid_mode_sweeps_every_competitor_and_tags_rows() {
        let wl = WorkloadConfig {
            key_range: 200,
            key_size: 24,
            value_size: 64,
            seed: 7,
            distribution: crate::workload::KeyDistribution::Uniform,
        };
        let mut summary = Summary::new();
        run_grid(
            &[1, 2],
            &wl,
            PoolConfig::small(),
            64,
            Duration::from_millis(10),
            &mut summary,
            false,
        );
        // 3 scenarios x 6 competitors x 2 thread counts.
        assert_eq!(
            summary.rows().len(),
            GRID_SCENARIOS.len() * GRID_COMPETITORS.len() * 2
        );
        assert!(summary.rows().iter().all(|r| r.note == "grid"));
        assert!(summary.rows().iter().all(|r| r.mops > 0.0));
        for label in GRID_SCENARIOS {
            for name in GRID_COMPETITORS {
                for t in [1usize, 2] {
                    assert!(
                        summary
                            .rows()
                            .iter()
                            .any(|r| r.scenario == *label && r.bench == *name && r.threads == t),
                        "missing grid row {label}/{name}/{t}"
                    );
                }
            }
        }
        // Shard widths really differ across the ShardedOak competitors.
        for n in [4usize, 8, 16] {
            assert!(
                summary
                    .rows()
                    .iter()
                    .any(|r| r.bench == format!("ShardedOak-{n}") && r.shards == n),
                "ShardedOak-{n} rows missing or mis-sharded"
            );
        }
    }

    #[test]
    fn zipfian_scenario_pins_its_distribution() {
        let sc = SCENARIOS
            .iter()
            .find(|s| s.label == "4i-zipf-95Get5Put")
            .expect("4i scenario registered");
        let base = WorkloadConfig {
            key_range: 100,
            key_size: 16,
            value_size: 32,
            seed: 1,
            distribution: crate::workload::KeyDistribution::Uniform,
        };
        let wl = sc.workload(&base);
        assert_eq!(
            wl.distribution,
            KeyDistribution::Zipfian { theta: 0.99 },
            "4i must override the run's uniform default"
        );
        // Scenarios without a pin inherit the base distribution.
        let plain = SCENARIOS.iter().find(|s| s.label == "4a-put").unwrap();
        assert_eq!(plain.workload(&base).distribution, KeyDistribution::Uniform);
    }

    #[test]
    fn smoke_run_one_scenario() {
        let wl = WorkloadConfig {
            key_range: 300,
            key_size: 32,
            value_size: 64,
            seed: 3,
            distribution: crate::workload::KeyDistribution::Uniform,
        };
        let mut summary = Summary::new();
        run_scenario(
            &SCENARIOS[0],
            &[1],
            &wl,
            PoolConfig::small(),
            64,
            Duration::from_millis(20),
            &mut summary,
            false,
        );
        assert_eq!(summary.rows().len(), 4); // four competitors
        assert!(summary.rows().iter().all(|r| r.mops > 0.0));
        assert!(summary
            .rows()
            .iter()
            .any(|r| r.bench == SHARDED_DEFAULT && r.shards == 4));
    }
}
