//! The two-stage benchmark driver: single-threaded ingestion, then a
//! timed sustained-rate stage on symmetric worker threads (§5.1).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::adapter::MapAdapter;
use crate::workload::{KeyDistribution, KeySampler, Mix, WorkloadConfig};

/// Result of one experiment run.
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    /// Operations completed in the sustained stage.
    pub ops: u64,
    /// Sustained-stage wall time.
    pub elapsed: Duration,
    /// Entries in the map after ingestion.
    pub final_size: usize,
}

impl RunResult {
    /// Throughput in thousands of operations per second (the paper's
    /// Kops/sec axis).
    pub fn kops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64() / 1_000.0
    }

    /// Throughput in millions of operations per second (the artifact's
    /// summary.csv unit).
    pub fn mops_per_sec(&self) -> f64 {
        self.kops_per_sec() / 1_000.0
    }
}

/// Ingestion stage: a single thread populates the map with 50% of the
/// unique keys in the range using `putIfAbsent` (§5.1). Returns inserted
/// count and elapsed time.
pub fn ingest(map: &dyn MapAdapter, config: &WorkloadConfig) -> (u64, Duration) {
    let start = Instant::now();
    // Populate with uniform ids regardless of the measured distribution
    // (YCSB convention: skew shapes the access phase, not the load). A
    // Zipfian sampler revisits its hot head almost exclusively — and its
    // rank scramble is not injective mod `key_range`, so it cannot even
    // *reach* `target` distinct keys: sampling it here would never
    // terminate.
    let uniform = WorkloadConfig {
        distribution: KeyDistribution::Uniform,
        ..config.clone()
    };
    let mut sampler = KeySampler::new(&uniform, u64::MAX);
    let target = config.key_range / 2;
    let mut inserted = 0u64;
    while inserted < target {
        let id = sampler.next_id();
        if map.put_if_absent(&config.key(id), &config.value(id)) {
            inserted += 1;
        }
    }
    (inserted, start.elapsed())
}

/// Deterministic ingestion of exactly the even key ids (used by scan
/// benchmarks that need a known population).
pub fn ingest_even(map: &dyn MapAdapter, config: &WorkloadConfig) {
    for id in (0..config.key_range).step_by(2) {
        map.put_if_absent(&config.key(id), &config.value(id));
    }
}

fn run_op(map: &dyn MapAdapter, config: &WorkloadConfig, mix: Mix, sampler: &mut KeySampler) {
    match mix {
        Mix::PutOnly => {
            let id = sampler.next_id();
            map.put(&config.key(id), &config.value(id));
        }
        Mix::ComputeOnly => {
            let id = sampler.next_id();
            if !map.compute8(&config.key(id)) {
                // Absent key (the un-ingested half): seed it so in-place
                // updates dominate, as in the paper's workload.
                map.put_if_absent(&config.key(id), &config.value(id));
            }
        }
        Mix::GetZeroCopy => {
            let id = sampler.next_id();
            std::hint::black_box(map.get_zc(&config.key(id)));
        }
        Mix::GetCopy => {
            let id = sampler.next_id();
            std::hint::black_box(map.get_copy(&config.key(id)));
        }
        Mix::Mixed95 => {
            let id = sampler.next_id();
            if sampler.next_pct() < 5 {
                map.put(&config.key(id), &config.value(id));
            } else {
                std::hint::black_box(map.get_zc(&config.key(id)));
            }
        }
        Mix::AscendScan { len, stream } => {
            let id = sampler.next_id();
            std::hint::black_box(map.ascend(&config.key(id), len, stream));
        }
        Mix::DescendScan { len, stream } => {
            let id = sampler.next_id();
            std::hint::black_box(map.descend(&config.key(id), len, stream));
        }
        Mix::RangeScan { span, stream } => {
            // One op = one whole bounded scan (matching the AscendScan
            // accounting, so Mops/s stays scans-per-second).
            let id = sampler.next_id();
            std::hint::black_box(map.range(&config.key(id), &config.key(id + span), stream));
        }
        Mix::PutRemoveChurn => {
            let id = sampler.next_id();
            if sampler.next_pct() < 50 {
                map.put(&config.key(id), &config.value(id));
            } else {
                map.remove(&config.key(id));
            }
        }
        Mix::ScanChurn { len } => {
            let id = sampler.next_id();
            match sampler.next_pct() {
                0..=9 => {
                    std::hint::black_box(map.ascend(&config.key(id), len, false));
                }
                10..=54 => {
                    map.put(&config.key(id), &config.value(id));
                }
                _ => {
                    map.remove(&config.key(id));
                }
            }
        }
    }
}

/// Sustained-rate stage: `threads` symmetric workers run `mix` against the
/// (already ingested) map for `duration`.
pub fn sustained(
    map: &Arc<dyn MapAdapter>,
    config: &WorkloadConfig,
    mix: Mix,
    threads: usize,
    duration: Duration,
) -> RunResult {
    let stop = Arc::new(AtomicBool::new(false));
    let total_ops = Arc::new(AtomicU64::new(0));
    let final_size = map.len();

    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads {
        let map = map.clone();
        let config = config.clone();
        let stop = stop.clone();
        let total_ops = total_ops.clone();
        handles.push(std::thread::spawn(move || {
            let mut sampler = KeySampler::new(&config, t as u64);
            let mut local = 0u64;
            while !stop.load(Ordering::Relaxed) {
                run_op(map.as_ref(), &config, mix, &mut sampler);
                local += 1;
            }
            total_ops.fetch_add(local, Ordering::Relaxed);
        }));
    }
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    RunResult {
        ops: total_ops.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
        final_size,
    }
}

/// Fixed-operation-count variant (deterministic work, used by Criterion).
pub fn run_fixed_ops(
    map: &dyn MapAdapter,
    config: &WorkloadConfig,
    mix: Mix,
    ops: u64,
) -> Duration {
    let mut sampler = KeySampler::new(config, 0);
    let start = Instant::now();
    for _ in 0..ops {
        run_op(map, config, mix, &mut sampler);
    }
    start.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::TraitAdapter;
    use oak_core::{OakMap, OakMapConfig};
    use oak_skiplist::SkipListMap;
    use parking_lot::Mutex;

    fn tiny() -> WorkloadConfig {
        WorkloadConfig {
            key_range: 500,
            key_size: 32,
            value_size: 64,
            seed: 7,
            distribution: crate::workload::KeyDistribution::Uniform,
        }
    }

    #[test]
    fn ingest_fills_half_the_range() {
        let config = tiny();
        let map = TraitAdapter::new("OakMap", OakMap::with_config(OakMapConfig::small()));
        let (inserted, _) = ingest(&map, &config);
        assert_eq!(inserted, 250);
        assert_eq!(map.len(), 250);
    }

    #[test]
    fn ingest_terminates_under_a_zipfian_workload() {
        // Regression: ingestion used to sample the *configured*
        // distribution, and a Zipfian sampler cannot reach key_range/2
        // distinct ids (its rank scramble is lossy mod key_range) — the
        // fill spun forever. Ingestion must populate uniformly and still
        // hit the exact target.
        let config = tiny().zipfian(0.99);
        let map = TraitAdapter::new("OakMap", OakMap::with_config(OakMapConfig::small()));
        let (inserted, _) = ingest(&map, &config);
        assert_eq!(inserted, 250);
        assert_eq!(map.len(), 250);
    }

    #[test]
    fn sustained_runs_all_mixes() {
        let config = tiny();
        let map: Arc<dyn MapAdapter> = Arc::new(TraitAdapter::new(
            "OakMap",
            OakMap::with_config(OakMapConfig::small()),
        ));
        ingest(map.as_ref(), &config);
        for mix in [
            Mix::PutOnly,
            Mix::ComputeOnly,
            Mix::GetZeroCopy,
            Mix::GetCopy,
            Mix::Mixed95,
            Mix::AscendScan {
                len: 50,
                stream: true,
            },
            Mix::AscendScan {
                len: 50,
                stream: false,
            },
            Mix::DescendScan {
                len: 50,
                stream: true,
            },
            Mix::DescendScan {
                len: 50,
                stream: false,
            },
            Mix::RangeScan {
                span: 40,
                stream: true,
            },
            Mix::RangeScan {
                span: 40,
                stream: false,
            },
            Mix::ScanChurn { len: 50 },
        ] {
            let r = sustained(&map, &config, mix, 2, Duration::from_millis(30));
            assert!(r.ops > 0, "mix {mix:?} made no progress");
            assert!(r.kops_per_sec() > 0.0);
        }
    }

    #[test]
    fn fixed_ops_deterministic_progress() {
        let config = tiny();
        let map = TraitAdapter::new(
            "JavaSkipListMap",
            SkipListMap::<Vec<u8>, Mutex<Vec<u8>>>::new(),
        );
        ingest(&map, &config);
        let d = run_fixed_ops(&map, &config, Mix::GetZeroCopy, 1_000);
        assert!(d.as_nanos() > 0);
    }
}
