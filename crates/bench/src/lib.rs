//! # oak-bench — synchrobench-equivalent harness for the Oak evaluation
//!
//! Reimplements the methodology of the paper's §5.1 and artifact appendix:
//! uniform key draws from a configurable range, 100 B keys / 1 KB values by
//! default, an ingestion stage pre-filling 50% of the range with
//! `putIfAbsent`, then a sustained-rate stage running an operation mix on
//! symmetric worker threads; output is a `summary.csv`-style table.
//!
//! The [`adapter`] module wraps every compared solution behind one generic
//! adapter over the workspace-wide `OrderedKvMap` trait: Oak (ZC and
//! Copy), `ShardedOak-N`, `Skiplist-OnHeap`, `Skiplist-OffHeap`, and the
//! MapDB stand-in B-tree. [`driver`] runs the stages; [`scenarios`]
//! defines one entry per paper figure; [`memfig`] and [`druidfig`] build
//! the memory (Fig 3) and Druid (Fig 5) experiments.

#![warn(missing_docs)]

pub mod adapter;
pub mod driver;
pub mod druidfig;
pub mod memfig;
pub mod report;
pub mod scenarios;
pub mod workload;
