//! Property tests: the skiplist must agree with `std::collections::BTreeMap`
//! under arbitrary sequential operation mixes, including ordered queries.

use std::collections::BTreeMap;

use oak_skiplist::{PutOutcome, SkipListMap};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Put(u16, u32),
    PutIfAbsent(u16, u32),
    Remove(u16),
    Get(u16),
    Compute(u16, u32),
    Merge(u16, u32),
    Floor(u16, bool),
    Ceiling(u16, bool),
    Range(u16, u16),
    Descend(u16, u16),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Put(k % 128, v)),
            (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::PutIfAbsent(k % 128, v)),
            any::<u16>().prop_map(|k| Op::Remove(k % 128)),
            any::<u16>().prop_map(|k| Op::Get(k % 128)),
            (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Compute(k % 128, v)),
            (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Merge(k % 128, v)),
            (any::<u16>(), any::<bool>()).prop_map(|(k, i)| Op::Floor(k % 128, i)),
            (any::<u16>(), any::<bool>()).prop_map(|(k, i)| Op::Ceiling(k % 128, i)),
            (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Op::Range(a % 128, b % 128)),
            (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Op::Descend(a % 128, b % 128)),
        ],
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matches_btreemap(ops in ops()) {
        let sl = SkipListMap::<u16, u32>::new();
        let mut model: BTreeMap<u16, u32> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Put(k, v) => {
                    let out = sl.put(k, v);
                    let old = model.insert(k, v);
                    prop_assert_eq!(out == PutOutcome::Replaced, old.is_some());
                }
                Op::PutIfAbsent(k, v) => {
                    let inserted = sl.put_if_absent(k, v);
                    let absent = !model.contains_key(&k);
                    prop_assert_eq!(inserted, absent);
                    if absent {
                        model.insert(k, v);
                    }
                }
                Op::Remove(k) => {
                    let removed = sl.remove(&k);
                    prop_assert_eq!(removed, model.remove(&k).is_some());
                }
                Op::Get(k) => {
                    prop_assert_eq!(sl.get_cloned(&k), model.get(&k).copied());
                }
                Op::Compute(k, add) => {
                    let did = sl.compute_if_present(&k, |v| v.wrapping_add(add));
                    if let Some(v) = model.get_mut(&k) {
                        prop_assert!(did);
                        *v = v.wrapping_add(add);
                    } else {
                        prop_assert!(!did);
                    }
                }
                Op::Merge(k, v) => {
                    sl.merge(k, v, |cur| cur.wrapping_add(1));
                    model
                        .entry(k)
                        .and_modify(|c| *c = c.wrapping_add(1))
                        .or_insert(v);
                }
                Op::Floor(k, inclusive) => {
                    let got = sl.floor_with(&k, inclusive, |k, v| (*k, *v));
                    let want = if inclusive {
                        model.range(..=k).next_back().map(|(a, b)| (*a, *b))
                    } else {
                        model.range(..k).next_back().map(|(a, b)| (*a, *b))
                    };
                    prop_assert_eq!(got, want);
                }
                Op::Ceiling(k, inclusive) => {
                    let got = sl.ceiling_with(&k, inclusive, |k, v| (*k, *v));
                    let want = if inclusive {
                        model.range(k..).next().map(|(a, b)| (*a, *b))
                    } else {
                        model.range((std::ops::Bound::Excluded(k), std::ops::Bound::Unbounded))
                            .next()
                            .map(|(a, b)| (*a, *b))
                    };
                    prop_assert_eq!(got, want);
                }
                Op::Range(a, b) => {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    let got = sl.collect_range(Some(&lo), Some(&hi));
                    let want: Vec<(u16, u32)> =
                        model.range(lo..hi).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(got, want);
                }
                Op::Descend(a, b) => {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    let mut got = Vec::new();
                    sl.for_each_descending(&hi, Some(&lo), |k, v| {
                        got.push((*k, *v));
                        true
                    });
                    let mut want: Vec<(u16, u32)> =
                        model.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
                    want.reverse();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(sl.len(), model.len());
        }

        // Final full-content comparison.
        let got = sl.collect_range(None, None);
        let want: Vec<(u16, u32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
    }
}

/// Direct checks for the probe-based floor search used by Oak's index.
#[test]
fn floor_by_matches_floor_with() {
    let m = SkipListMap::<u32, u32>::new();
    for k in (0..100).step_by(5) {
        m.put(k, k);
    }
    for probe in 0..110u32 {
        let via_key = m.floor_with(&probe, true, |k, _| *k);
        let via_probe = m.floor_by(|k| *k <= probe, |k, _| *k);
        assert_eq!(via_key, via_probe, "probe {probe}");
        let strict_key = m.floor_with(&probe, false, |k, _| *k);
        let strict_probe = m.floor_by(|k| *k < probe, |k, _| *k);
        assert_eq!(strict_key, strict_probe, "strict probe {probe}");
    }
    assert_eq!(m.floor_by(|_| false, |k, _| *k), None);
    assert_eq!(m.floor_by(|_| true, |k, _| *k), Some(95));
}
