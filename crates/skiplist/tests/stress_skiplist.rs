//! Concurrent stress tests for the lock-free skiplist.
//!
//! These run on however many cores the host has; the invariants they check
//! (unique winners, no lost updates, exact length accounting, linearizable
//! get-after-remove) must hold regardless of interleaving.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use oak_skiplist::SkipListMap;

const THREADS: usize = 4;

#[test]
fn concurrent_put_if_absent_unique_winner() {
    let m = Arc::new(SkipListMap::<u64, u64>::new());
    for round in 0..20u64 {
        let winners = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..THREADS as u64 {
            let m = m.clone();
            let winners = winners.clone();
            handles.push(std::thread::spawn(move || {
                if m.put_if_absent(round, t) {
                    winners.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(winners.load(Ordering::SeqCst), 1, "round {round}");
        // The stored value must be the winner's.
        assert!(m.get_cloned(&round).is_some());
    }
    assert_eq!(m.len(), 20);
}

#[test]
fn concurrent_remove_unique_winner() {
    let m = Arc::new(SkipListMap::<u64, u64>::new());
    for round in 0..20u64 {
        m.put(round, round);
        let winners = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let m = m.clone();
            let winners = winners.clone();
            handles.push(std::thread::spawn(move || {
                if m.remove(&round) {
                    winners.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(winners.load(Ordering::SeqCst), 1, "round {round}");
        assert_eq!(m.get_cloned(&round), None);
    }
    assert_eq!(m.len(), 0);
}

#[test]
fn concurrent_disjoint_inserts_all_land() {
    let m = Arc::new(SkipListMap::<u64, u64>::new());
    let per_thread = 2_000u64;
    let mut handles = Vec::new();
    for t in 0..THREADS as u64 {
        let m = m.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..per_thread {
                let k = t * per_thread + i;
                assert!(m.put_if_absent(k, k * 3));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(m.len(), THREADS * per_thread as usize);
    let all = m.collect_range(None, None);
    assert_eq!(all.len(), m.len());
    assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "sorted order");
    for (k, v) in all {
        assert_eq!(v, k * 3);
    }
}

#[test]
fn concurrent_same_key_churn() {
    // Insert/remove the same small key set from all threads; afterwards the
    // map must be consistent with its own length counter and hold only
    // values some thread actually wrote.
    let m = Arc::new(SkipListMap::<u64, u64>::new());
    let mut handles = Vec::new();
    for t in 0..THREADS as u64 {
        let m = m.clone();
        handles.push(std::thread::spawn(move || {
            let mut state = t.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            for i in 0..5_000u64 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let k = state % 16;
                match state % 3 {
                    0 => {
                        m.put(k, t * 1_000_000 + i);
                    }
                    1 => {
                        m.put_if_absent(k, t * 1_000_000 + i);
                    }
                    _ => {
                        m.remove(&k);
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let survivors = m.collect_range(None, None);
    assert_eq!(survivors.len(), m.len());
    for (k, v) in survivors {
        assert!(k < 16);
        assert!(v % 1_000_000 < 5_000, "value written by some thread");
    }
}

#[test]
fn concurrent_compute_no_lost_updates() {
    // compute_if_present is a CAS loop: no increment may be lost.
    let m = Arc::new(SkipListMap::<u64, u64>::new());
    m.put(0, 0);
    let per_thread = 2_000u64;
    let mut handles = Vec::new();
    for _ in 0..THREADS {
        let m = m.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..per_thread {
                assert!(m.compute_if_present(&0, |v| v + 1));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(m.get_cloned(&0), Some(THREADS as u64 * per_thread));
}

#[test]
fn get_after_remove_is_linearizable() {
    // A reader that observes absence after a remove completed must keep
    // observing absence until a subsequent insert. We drive remove/insert
    // cycles and check the reader never sees stale values.
    let m = Arc::new(SkipListMap::<u64, u64>::new());
    let stop = Arc::new(AtomicU64::new(0));
    let epoch_ctr = Arc::new(AtomicU64::new(0));

    let writer = {
        let (m, stop, epoch_ctr) = (m.clone(), stop.clone(), epoch_ctr.clone());
        std::thread::spawn(move || {
            for gen in 0..2_000u64 {
                m.put(7, gen);
                epoch_ctr.store(gen * 2 + 1, Ordering::SeqCst); // inserted(gen)
                m.remove(&7);
                epoch_ctr.store(gen * 2 + 2, Ordering::SeqCst); // removed(gen)
            }
            stop.store(1, Ordering::SeqCst);
        })
    };
    let reader = {
        let (m, stop, epoch_ctr) = (m, stop, epoch_ctr);
        std::thread::spawn(move || {
            while stop.load(Ordering::SeqCst) == 0 {
                let before = epoch_ctr.load(Ordering::SeqCst);
                let got = m.get_cloned(&7);
                let after = epoch_ctr.load(Ordering::SeqCst);
                if let Some(v) = got {
                    // The value's insert must not have been fully removed
                    // before our read began: v's generation is gen = v; it
                    // was removed at counter 2v+2. If the removal counter
                    // was already past when we started, the read is stale.
                    assert!(
                        before <= 2 * v + 2,
                        "stale read: saw gen {v} but counter was {before} (after {after})"
                    );
                }
            }
        })
    };
    writer.join().unwrap();
    reader.join().unwrap();
}

#[test]
fn mixed_scan_during_churn_respects_bounds() {
    let m = Arc::new(SkipListMap::<u64, u64>::new());
    // Stable keys that are never touched: must always appear in scans.
    for k in (0..1_000u64).step_by(2) {
        m.put(k, k);
    }
    let stop = Arc::new(AtomicU64::new(0));
    let churn = {
        let (m, stop) = (m.clone(), stop.clone());
        std::thread::spawn(move || {
            let mut i = 0u64;
            while stop.load(Ordering::SeqCst) == 0 {
                let k = (i * 2 + 1) % 1_000; // odd keys only
                m.put(k, k);
                m.remove(&k);
                i += 1;
            }
        })
    };
    for _ in 0..50 {
        let snapshot = m.collect_range(Some(&100), Some(&900));
        // Every stable (even) key in range must be present; odd keys may or
        // may not appear; order must be strict.
        let evens: Vec<u64> = snapshot
            .iter()
            .map(|(k, _)| *k)
            .filter(|k| k % 2 == 0)
            .collect();
        let expect: Vec<u64> = (100..900).step_by(2).collect();
        assert_eq!(evens, expect);
        assert!(snapshot.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(snapshot.iter().all(|(k, _)| (100..900).contains(k)));
    }
    stop.store(1, Ordering::SeqCst);
    churn.join().unwrap();
}
