//! A lock-free concurrent skiplist map.
//!
//! The construction follows the classical lock-free skiplist (Herlihy &
//! Shavit ch. 14 / Fraser) with `ConcurrentSkipListMap`-style value
//! semantics, adapted to epoch-based reclamation:
//!
//! * Each node owns an immutable key and an atomically replaceable value
//!   box. **A null value box means the mapping is logically deleted** — the
//!   CAS that nulls the value is `remove`'s linearization point and has a
//!   unique winner.
//! * After nulling, the remover *marks* every level of the node's tower by
//!   tagging the `next` pointers; traversals physically unlink marked nodes
//!   as they pass (helping).
//! * Every node carries a `link_count`: +1 per level it is physically
//!   linked at. The thread whose unlink drops the count to zero retires the
//!   node to the epoch collector. Upper-level linking during insertion uses
//!   a guarded increment (never from zero), so a retired node can never be
//!   made reachable again — the soundness condition for epoch reclamation.
//! * Searches that land on a key-equal node whose value is null help
//!   complete the removal and retry, which keeps `get` linearizable in the
//!   presence of delete/re-insert races on the same key.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam_epoch::{self as epoch, Atomic, Guard, Owned, Shared};
use oak_gcheap::{HeapModel, NoopHeap, ObjToken};

use crate::rng;

/// Maximum tower height. 2^24 expected keys is far beyond the scaled
/// benchmarks; `ConcurrentSkipListMap` similarly caps its levels.
pub const MAX_HEIGHT: usize = 24;

/// Tag bit on a `next` pointer marking the *owning* node as removed at that
/// level.
const MARK: usize = 1;

struct VBox<V> {
    value: V,
    token: ObjToken,
}

struct Node<K, V> {
    /// `None` only for the head sentinel.
    key: Option<K>,
    /// Null ⇒ logically deleted (or head).
    value: Atomic<VBox<V>>,
    /// Heap-model charge covering the node object, tower, and boxed key.
    token: ObjToken,
    /// Number of levels this node is currently physically linked at.
    link_count: AtomicUsize,
    tower: Box<[Atomic<Node<K, V>>]>,
}

impl<K, V> Node<K, V> {
    fn height(&self) -> usize {
        self.tower.len()
    }

    #[inline]
    fn key(&self) -> &K {
        self.key.as_ref().expect("head sentinel has no key")
    }
}

/// Outcome of [`SkipListMap::put`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PutOutcome {
    /// The key was absent; a new mapping was created.
    Inserted,
    /// The key was present; its value was replaced.
    Replaced,
}

/// A lock-free ordered map from `K` to `V`.
///
/// All operations are linearizable except iteration, which offers the same
/// non-atomic scan guarantees as the paper's maps (§1.1): keys present for
/// the whole scan are returned, keys absent throughout are not, and no key
/// is returned twice.
///
/// ```
/// use oak_skiplist::{PutOutcome, SkipListMap};
///
/// let m: SkipListMap<u64, String> = SkipListMap::new();
/// assert_eq!(m.put(2, "two".into()), PutOutcome::Inserted);
/// assert!(m.put_if_absent(1, "one".into()));
/// assert!(!m.put_if_absent(1, "uno".into()));
/// assert_eq!(m.get_cloned(&1).as_deref(), Some("one"));
/// assert_eq!(m.floor_with(&5, true, |k, _| *k), Some(2));
/// assert_eq!(m.collect_range(None, None).len(), 2);
/// assert!(m.remove(&1));
/// ```
pub struct SkipListMap<K, V> {
    head: Box<Node<K, V>>,
    len: AtomicUsize,
    heap: Arc<dyn HeapModel>,
    key_size: Box<dyn Fn(&K) -> usize + Send + Sync>,
    val_size: Box<dyn Fn(&V) -> usize + Send + Sync>,
}

// SAFETY: all shared mutation goes through atomics; K and V cross threads.
unsafe impl<K: Send + Sync, V: Send + Sync> Send for SkipListMap<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for SkipListMap<K, V> {}

struct FindResult<'g, K, V> {
    preds: [*const Node<K, V>; MAX_HEIGHT],
    succs: [Shared<'g, Node<K, V>>; MAX_HEIGHT],
    /// The node whose key equals the target, if physically present.
    found: Option<Shared<'g, Node<K, V>>>,
}

impl<K, V> SkipListMap<K, V>
where
    K: Ord + Send + Sync + 'static,
    V: Send + Sync + 'static,
{
    /// Creates an empty map with no heap-model accounting.
    pub fn new() -> Self {
        Self::with_heap(Arc::new(NoopHeap), |_| 0, |_| 0)
    }

    /// Creates an empty map that charges `heap` for every simulated Java
    /// object: one node object per mapping plus `key_size`/`val_size` bytes
    /// for the boxed key and value.
    pub fn with_heap(
        heap: Arc<dyn HeapModel>,
        key_size: impl Fn(&K) -> usize + Send + Sync + 'static,
        val_size: impl Fn(&V) -> usize + Send + Sync + 'static,
    ) -> Self {
        let tower = (0..MAX_HEIGHT)
            .map(|_| Atomic::null())
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SkipListMap {
            head: Box::new(Node {
                key: None,
                value: Atomic::null(),
                token: ObjToken::NONE,
                link_count: AtomicUsize::new(0),
                tower,
            }),
            len: AtomicUsize::new(0),
            heap,
            key_size: Box::new(key_size),
            val_size: Box::new(val_size),
        }
    }

    /// Number of live mappings (exact: maintained at the linearization
    /// points of insert and remove).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The heap model attached to this map.
    pub fn heap(&self) -> &Arc<dyn HeapModel> {
        &self.heap
    }

    fn node_charge(&self, key: &K, height: usize) -> usize {
        oak_gcheap::layout::skiplist_node()
            + (self.key_size)(key)
            + height.saturating_sub(1) * oak_gcheap::layout::skiplist_index_node()
    }

    /// Drops one physical link; retires the node when the last link is
    /// gone. The caller must have just succeeded in a CAS that removed one
    /// link to `node` (or abandoned a speculative link increment).
    fn release_link<'g>(&self, node: Shared<'g, Node<K, V>>, guard: &'g Guard) {
        let n = unsafe { node.deref() };
        if n.link_count.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last link gone: the node is unreachable from every level and
            // the guarded-increment rule prevents resurrection.
            unsafe { guard.defer_destroy(node) };
        }
    }

    /// Increments `link_count` unless it already reached zero.
    fn try_acquire_link(node: &Node<K, V>) -> bool {
        let mut cur = node.link_count.load(Ordering::Relaxed);
        loop {
            if cur == 0 {
                return false;
            }
            match node.link_count.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(x) => cur = x,
            }
        }
    }

    /// Searches for `key`, physically unlinking every marked node it
    /// encounters (the helping protocol).
    fn find<'g>(&self, key: &K, guard: &'g Guard) -> FindResult<'g, K, V> {
        'retry: loop {
            let mut preds: [*const Node<K, V>; MAX_HEIGHT] = [&*self.head as *const _; MAX_HEIGHT];
            let mut succs: [Shared<'g, Node<K, V>>; MAX_HEIGHT] = [Shared::null(); MAX_HEIGHT];

            let mut pred: &Node<K, V> = &self.head;
            for level in (0..MAX_HEIGHT).rev() {
                let mut curr = pred.tower[level].load(Ordering::Acquire, guard);
                if curr.tag() == MARK {
                    // `pred` itself got marked under us; start over.
                    continue 'retry;
                }
                #[allow(clippy::while_let_loop)] // break sites differ below
                loop {
                    let Some(c) = (unsafe { curr.as_ref() }) else {
                        break;
                    };
                    let succ = c.tower[level].load(Ordering::Acquire, guard);
                    if succ.tag() == MARK {
                        // `c` is removed at this level: unlink it.
                        match pred.tower[level].compare_exchange(
                            curr.with_tag(0),
                            succ.with_tag(0),
                            Ordering::AcqRel,
                            Ordering::Acquire,
                            guard,
                        ) {
                            Ok(_) => {
                                self.release_link(curr.with_tag(0), guard);
                                curr = succ.with_tag(0);
                                continue;
                            }
                            Err(_) => continue 'retry,
                        }
                    }
                    if c.key() < key {
                        pred = c;
                        curr = succ;
                    } else {
                        break;
                    }
                }
                preds[level] = pred as *const _;
                succs[level] = curr;
            }

            let found = match unsafe { succs[0].as_ref() } {
                Some(c) if c.key() == key => Some(succs[0]),
                _ => None,
            };
            return FindResult {
                preds,
                succs,
                found,
            };
        }
    }

    /// Read-only descent without helping; returns the first bottom-level
    /// node with key ≥ `key` (possibly logically deleted).
    fn seek<'g>(&self, key: &K, guard: &'g Guard) -> Shared<'g, Node<K, V>> {
        let mut pred: &Node<K, V> = &self.head;
        let mut curr = Shared::null();
        for level in (0..MAX_HEIGHT).rev() {
            curr = pred.tower[level].load(Ordering::Acquire, guard).with_tag(0);
            while let Some(c) = unsafe { curr.as_ref() } {
                if c.key() < key {
                    pred = c;
                    curr = c.tower[level].load(Ordering::Acquire, guard).with_tag(0);
                } else {
                    break;
                }
            }
        }
        curr
    }

    /// Marks every level of `node`'s tower (top-down), then helps unlink.
    fn complete_removal<'g>(&self, node: Shared<'g, Node<K, V>>, key: &K, guard: &'g Guard) {
        let n = unsafe { node.deref() };
        for level in (0..n.height()).rev() {
            loop {
                let cur = n.tower[level].load(Ordering::Acquire, guard);
                if cur.tag() == MARK {
                    break;
                }
                if n.tower[level]
                    .compare_exchange(
                        cur,
                        cur.with_tag(MARK),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                        guard,
                    )
                    .is_ok()
                {
                    break;
                }
            }
        }
        // One find pass unlinks it wherever it is still linked.
        let _ = self.find(key, guard);
    }

    /// Applies `f` to the value mapped to `key`, if present.
    pub fn get_with<R>(&self, key: &K, f: impl FnOnce(&V) -> R) -> Option<R> {
        self.heap.safepoint();
        let guard = epoch::pin();
        loop {
            let curr = self.seek(key, &guard);
            let c = unsafe { curr.as_ref() }?;
            if c.key() != key {
                return None;
            }
            let v = c.value.load(Ordering::Acquire, &guard);
            match unsafe { v.as_ref() } {
                Some(vb) => return Some(f(&vb.value)),
                None => {
                    // Key-equal node logically deleted: help it out of the
                    // list and retry so we observe the post-removal state.
                    self.complete_removal(curr, key, &guard);
                    continue;
                }
            }
        }
    }

    /// Clones the value mapped to `key`.
    pub fn get_cloned(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.get_with(key, V::clone)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get_with(key, |_| ()).is_some()
    }

    /// Inserts or replaces the mapping for `key`.
    pub fn put(&self, key: K, value: V) -> PutOutcome {
        match self.do_insert(key, value, true) {
            true => PutOutcome::Inserted,
            false => PutOutcome::Replaced,
        }
    }

    /// Inserts `key → value` if absent. Returns `true` if this call
    /// created the mapping.
    pub fn put_if_absent(&self, key: K, value: V) -> bool {
        self.do_insert(key, value, false)
    }

    /// Returns `true` if inserted as a fresh mapping, `false` if the key
    /// existed (after replacing when `replace` is set).
    fn do_insert(&self, mut key: K, mut value: V, replace: bool) -> bool {
        self.heap.safepoint();
        let guard = epoch::pin();

        loop {
            let f = self.find(&key, &guard);
            if let Some(node_sh) = f.found {
                let node = unsafe { node_sh.deref() };
                // Key present (physically). Engage its value box.
                let mut cur = node.value.load(Ordering::Acquire, &guard);
                loop {
                    if cur.is_null() {
                        // Logically deleted: help finish and re-insert.
                        self.complete_removal(node_sh, &key, &guard);
                        break;
                    }
                    if !replace {
                        return false;
                    }
                    let val_token = self.heap.alloc((self.val_size)(&value));
                    let vbox = Owned::new(VBox {
                        value,
                        token: val_token,
                    });
                    match node.value.compare_exchange(
                        cur,
                        vbox,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                        &guard,
                    ) {
                        Ok(_) => {
                            let old = unsafe { cur.deref() };
                            self.heap.free(old.token);
                            unsafe { guard.defer_destroy(cur) };
                            return false;
                        }
                        Err(e) => {
                            // Undo the speculative charge and retry.
                            let undone = e.new.into_box();
                            self.heap.free(undone.token);
                            value = undone.value;
                            cur = e.current;
                        }
                    }
                }
                continue; // retry the whole operation
            }

            // Key absent: build and link a new node at the bottom level.
            let height = rng::random_height(MAX_HEIGHT);
            let tower = (0..height)
                .map(|_| Atomic::null())
                .collect::<Vec<_>>()
                .into_boxed_slice();
            // Charge the heap for node + key + value before publication.
            let node_token = self.heap.alloc(self.node_charge(&key, height));
            let val_token = self.heap.alloc((self.val_size)(&value));
            let new_vbox = Owned::new(VBox {
                value,
                token: val_token,
            });
            let node = Owned::new(Node {
                key: Some(key),
                value: Atomic::null(),
                token: node_token,
                link_count: AtomicUsize::new(1),
                tower,
            });
            node.value.store(new_vbox, Ordering::Relaxed);
            node.tower[0].store(f.succs[0], Ordering::Relaxed);

            let pred0 = unsafe { &*f.preds[0] };
            match pred0.tower[0].compare_exchange(
                f.succs[0],
                node,
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            ) {
                Ok(node_sh) => {
                    self.len.fetch_add(1, Ordering::Relaxed);
                    self.link_upper_levels(node_sh, height, &guard);
                    return true;
                }
                Err(e) => {
                    // Reclaim the speculative charges, recover the key and
                    // value from the unpublished node, and retry.
                    self.heap.free(node_token);
                    let failed_node = *e.new.into_box();
                    let Node {
                        key: failed_key,
                        value: failed_value,
                        ..
                    } = failed_node;
                    // SAFETY: the node was never published; we own the box.
                    let vb = failed_value.load(Ordering::Relaxed, unsafe { epoch::unprotected() });
                    let vb = unsafe { vb.into_owned().into_box() };
                    self.heap.free(vb.token);
                    value = vb.value;
                    key = failed_key.expect("fresh node has a key");
                }
            }
        }
    }

    /// Links `node` at levels `1..height` after a successful bottom-level
    /// insert. Gives up on levels if the node gets removed concurrently.
    fn link_upper_levels<'g>(
        &self,
        node_sh: Shared<'g, Node<K, V>>,
        height: usize,
        guard: &'g Guard,
    ) {
        let node = unsafe { node_sh.deref() };
        let key = node.key();
        'levels: for level in 1..height {
            loop {
                if node.value.load(Ordering::Acquire, guard).is_null() {
                    return; // removed; traversals will finish the unlink
                }
                let f = self.find(key, guard);
                if f.found.map(|s| s.as_raw()) != Some(node_sh.as_raw()) {
                    // Our node is gone (fully unlinked) — stop.
                    return;
                }
                let succ = f.succs[level];
                // Point our tower entry at the successor (guarded by the
                // mark tag: a failed CAS means we were removed).
                let cur = node.tower[level].load(Ordering::Acquire, guard);
                if cur.tag() == MARK {
                    return;
                }
                if !Self::try_acquire_link(node) {
                    return; // already retired-bound; never resurrect
                }
                if node.tower[level]
                    .compare_exchange(cur, succ, Ordering::AcqRel, Ordering::Acquire, guard)
                    .is_err()
                {
                    // Tag appeared (or a stale pointer); undo and re-check.
                    self.release_link(node_sh, guard);
                    continue;
                }
                let pred = unsafe { &*f.preds[level] };
                match pred.tower[level].compare_exchange(
                    succ,
                    node_sh,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    guard,
                ) {
                    Ok(_) => continue 'levels,
                    Err(_) => {
                        // Undo the speculative link and retry this level.
                        self.release_link(node_sh, guard);
                        continue;
                    }
                }
            }
        }
    }

    /// Removes the mapping for `key`. Returns `true` if this call removed
    /// it.
    pub fn remove(&self, key: &K) -> bool {
        self.remove_with(key, |_| ()).is_some()
    }

    /// Removes the mapping for `key`, applying `f` to the removed value
    /// before it is retired. Returns `None` if this call did not remove the
    /// mapping.
    pub fn remove_with<R>(&self, key: &K, f: impl FnOnce(&V) -> R) -> Option<R> {
        self.heap.safepoint();
        let guard = epoch::pin();
        let found = self.find(key, &guard).found;
        let node_sh = found?;
        let node = unsafe { node_sh.deref() };
        loop {
            let cur = node.value.load(Ordering::Acquire, &guard);
            if cur.is_null() {
                // Someone else won; help them finish.
                self.complete_removal(node_sh, key, &guard);
                return None;
            }
            match node.value.compare_exchange(
                cur,
                Shared::null(),
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            ) {
                Ok(_) => {
                    // Linearization point: the mapping is gone.
                    self.len.fetch_sub(1, Ordering::Relaxed);
                    let vb = unsafe { cur.deref() };
                    let result = f(&vb.value);
                    self.heap.free(vb.token);
                    self.heap.free(node.token);
                    unsafe { guard.defer_destroy(cur) };
                    self.complete_removal(node_sh, key, &guard);
                    return Some(result);
                }
                Err(_) => continue,
            }
        }
    }

    /// Atomically *replaces* the value with `f(&current)` if present — a
    /// CAS loop, so `f` may be evaluated several times, and the update is
    /// **not** in-place (the `ConcurrentSkipListMap` behaviour the paper
    /// contrasts with Oak's atomic in-place compute). Returns `true` if a
    /// replacement happened.
    pub fn compute_if_present(&self, key: &K, f: impl Fn(&V) -> V) -> bool {
        self.heap.safepoint();
        let guard = epoch::pin();
        loop {
            let curr = self.seek(key, &guard);
            let Some(c) = (unsafe { curr.as_ref() }) else {
                return false;
            };
            if c.key() != key {
                return false;
            }
            let cur = c.value.load(Ordering::Acquire, &guard);
            let Some(vb) = (unsafe { cur.as_ref() }) else {
                self.complete_removal(curr, key, &guard);
                continue;
            };
            let new_val = f(&vb.value);
            let val_token = self.heap.alloc((self.val_size)(&new_val));
            let new_box = Owned::new(VBox {
                value: new_val,
                token: val_token,
            });
            match c.value.compare_exchange(
                cur,
                new_box,
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            ) {
                Ok(_) => {
                    self.heap.free(vb.token);
                    unsafe { guard.defer_destroy(cur) };
                    return true;
                }
                Err(e) => {
                    let undone = e.new.into_box();
                    self.heap.free(undone.token);
                    continue;
                }
            }
        }
    }

    /// `merge`-style upsert: insert `value` if the key is absent, else
    /// replace the current value with `f(&current)`. Like the JDK's
    /// `merge`, the read-modify-write is a CAS loop, not atomic in place.
    pub fn merge(&self, key: K, value: V, f: impl Fn(&V) -> V)
    where
        K: Clone,
        V: Clone,
    {
        loop {
            if self.compute_if_present(&key, &f) {
                return;
            }
            if self.put_if_absent(key.clone(), value.clone())
            // note: K/V Clone needed only for the retry loop
            {
                return;
            }
        }
    }

    /// Ascending scan: applies `f` to every live entry with key in
    /// `[lo, hi)` (unbounded where `None`), in key order. Returns the
    /// number of entries visited. Stops early if `f` returns `false`.
    pub fn for_each_range(
        &self,
        lo: Option<&K>,
        hi: Option<&K>,
        mut f: impl FnMut(&K, &V) -> bool,
    ) -> usize {
        self.heap.safepoint();
        let guard = epoch::pin();
        let mut curr = match lo {
            Some(k) => self.seek(k, &guard),
            None => self.head.tower[0]
                .load(Ordering::Acquire, &guard)
                .with_tag(0),
        };
        let mut visited = 0;
        while let Some(c) = unsafe { curr.as_ref() } {
            if let Some(h) = hi {
                if c.key() >= h {
                    break;
                }
            }
            let v = c.value.load(Ordering::Acquire, &guard);
            if let Some(vb) = unsafe { v.as_ref() } {
                visited += 1;
                if !f(c.key(), &vb.value) {
                    break;
                }
            }
            curr = c.tower[0].load(Ordering::Acquire, &guard).with_tag(0);
        }
        visited
    }

    /// First live entry with key ≥ `key` (or > if `inclusive` is false).
    pub fn ceiling_with<R>(
        &self,
        key: &K,
        inclusive: bool,
        f: impl FnOnce(&K, &V) -> R,
    ) -> Option<R> {
        self.heap.safepoint();
        let guard = epoch::pin();
        let mut curr = self.seek(key, &guard);
        while let Some(c) = unsafe { curr.as_ref() } {
            let in_range = if inclusive {
                c.key() >= key
            } else {
                c.key() > key
            };
            if in_range {
                let v = c.value.load(Ordering::Acquire, &guard);
                if let Some(vb) = unsafe { v.as_ref() } {
                    return Some(f(c.key(), &vb.value));
                }
            }
            curr = c.tower[0].load(Ordering::Acquire, &guard).with_tag(0);
        }
        None
    }

    /// Last live entry with key ≤ `key` (or < if `inclusive` is false).
    ///
    /// Used by Oak's chunk index (`locateChunk`) and by the lookup-per-key
    /// descending scans of the skiplist baselines.
    pub fn floor_with<R>(
        &self,
        key: &K,
        inclusive: bool,
        f: impl FnOnce(&K, &V) -> R,
    ) -> Option<R> {
        self.floor_by(|k| if inclusive { k <= key } else { k < key }, f)
    }

    /// Generalized floor: the last live entry whose key satisfies
    /// `in_range`, which must be downward-closed (true for a prefix of the
    /// key order). Lets callers probe with foreign key representations —
    /// e.g. Oak probes its `minKey` index with raw byte slices, avoiding a
    /// key allocation per lookup.
    pub fn floor_by<R>(
        &self,
        in_range: impl Fn(&K) -> bool,
        f: impl FnOnce(&K, &V) -> R,
    ) -> Option<R> {
        self.heap.safepoint();
        let guard = epoch::pin();

        // Descend to the last node with key ≤/< `key`.
        let mut pred: &Node<K, V> = &self.head;
        for level in (0..MAX_HEIGHT).rev() {
            let mut curr = pred.tower[level]
                .load(Ordering::Acquire, &guard)
                .with_tag(0);
            while let Some(c) = unsafe { curr.as_ref() } {
                if in_range(c.key()) {
                    pred = c;
                    curr = c.tower[level].load(Ordering::Acquire, &guard).with_tag(0);
                } else {
                    break;
                }
            }
        }
        // `pred` is the last in-range node at the bottom level (or the
        // head). It may be logically deleted, and in-range nodes may have
        // been inserted after it; walk the short tail segment from `pred`,
        // tracking the last live in-range node.
        let mut best: Option<(&K, &VBox<V>)> = None;
        let start_at_pred = !std::ptr::eq(pred, &*self.head);
        let mut scan: Shared<'_, Node<K, V>> = if start_at_pred {
            // SAFETY: `pred` is protected by `guard`.
            Shared::from(pred as *const Node<K, V>)
        } else {
            self.head.tower[0]
                .load(Ordering::Acquire, &guard)
                .with_tag(0)
        };
        while let Some(c) = unsafe { scan.as_ref() } {
            if !in_range(c.key()) {
                break;
            }
            let v = c.value.load(Ordering::Acquire, &guard);
            if let Some(vb) = unsafe { v.as_ref() } {
                best = Some((c.key(), vb));
            }
            scan = c.tower[0].load(Ordering::Acquire, &guard).with_tag(0);
        }
        if best.is_none() && start_at_pred {
            // Cold path: `pred` and its tail segment were all logically
            // deleted. Fall back to a bottom-level walk from the head — the
            // true floor, if any, lies strictly before `pred`.
            let mut cursor = self.head.tower[0]
                .load(Ordering::Acquire, &guard)
                .with_tag(0);
            while let Some(c) = unsafe { cursor.as_ref() } {
                if !in_range(c.key()) {
                    break;
                }
                let v = c.value.load(Ordering::Acquire, &guard);
                if let Some(vb) = unsafe { v.as_ref() } {
                    best = Some((c.key(), vb));
                }
                cursor = c.tower[0].load(Ordering::Acquire, &guard).with_tag(0);
            }
        }
        best.map(|(k, vb)| f(k, &vb.value))
    }

    /// Descending scan implemented the `ConcurrentSkipListMap` way: a
    /// fresh O(log N) floor lookup per returned key (what Figure 4f
    /// measures). Applies `f` from the last key ≤ `from` down to keys
    /// ≥ `lo` (inclusive bounds); stops early if `f` returns `false`.
    /// Requires `K: Clone` to carry the cursor between lookups.
    pub fn for_each_descending(
        &self,
        from: &K,
        lo: Option<&K>,
        mut f: impl FnMut(&K, &V) -> bool,
    ) -> usize
    where
        K: Clone,
    {
        let mut visited = 0;
        let mut cursor: Option<K> = None;
        let mut inclusive = true;
        loop {
            let anchor = cursor.as_ref().unwrap_or(from);
            let step = self.floor_with(anchor, inclusive, |k, v| {
                if let Some(l) = lo {
                    if k < l {
                        return None;
                    }
                }
                Some((k.clone(), f(k, v)))
            });
            match step {
                Some(Some((k, keep_going))) => {
                    visited += 1;
                    if !keep_going {
                        break;
                    }
                    cursor = Some(k);
                    inclusive = false;
                }
                _ => break,
            }
        }
        visited
    }

    /// Collects the range into a `Vec` (clone-based convenience, mainly for
    /// tests).
    pub fn collect_range(&self, lo: Option<&K>, hi: Option<&K>) -> Vec<(K, V)>
    where
        K: Clone,
        V: Clone,
    {
        let mut out = Vec::new();
        self.for_each_range(lo, hi, |k, v| {
            out.push((k.clone(), v.clone()));
            true
        });
        out
    }

    /// First live key in the map.
    pub fn first_key(&self) -> Option<K>
    where
        K: Clone,
    {
        let mut out = None;
        self.for_each_range(None, None, |k, _| {
            out = Some(k.clone());
            false
        });
        out
    }

    /// Last live key in the map. O(n) bottom-level walk — the list keeps no
    /// backward pointers, matching `ConcurrentSkipListMap`'s node layout;
    /// used as the anchor for unbounded descending scans.
    pub fn last_key(&self) -> Option<K>
    where
        K: Clone,
    {
        let mut out = None;
        self.for_each_range(None, None, |k, _| {
            out = Some(k.clone());
            true
        });
        out
    }
}

impl<K, V> Default for SkipListMap<K, V>
where
    K: Ord + Send + Sync + 'static,
    V: Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> Drop for SkipListMap<K, V> {
    // drop_non_drop: whether `Owned` frees on drop depends on the epoch
    // backend; the drop calls are the point of this destructor.
    #[allow(clippy::drop_non_drop)]
    fn drop(&mut self) {
        // Exclusive access: collect every reachable node once (a node
        // unlinked at the bottom may still be linked at an upper level),
        // then free. Nodes retired to the epoch collector are unreachable
        // from every level (their link_count reached zero), so this walk
        // and the deferred destructions are disjoint.
        let guard = unsafe { epoch::unprotected() };
        let mut seen = std::collections::HashSet::new();
        let mut nodes: Vec<Shared<'_, Node<K, V>>> = Vec::new();
        for level in 0..MAX_HEIGHT {
            let mut curr = self.head.tower[level]
                .load(Ordering::Relaxed, guard)
                .with_tag(0);
            while let Some(c) = unsafe { curr.as_ref() } {
                if seen.insert(curr.as_raw() as usize) {
                    nodes.push(curr);
                }
                curr = c.tower[level].load(Ordering::Relaxed, guard).with_tag(0);
            }
        }
        for node in nodes {
            let c = unsafe { node.deref() };
            let v = c.value.load(Ordering::Relaxed, guard);
            if !v.is_null() {
                drop(unsafe { v.into_owned() });
            }
            drop(unsafe { node.into_owned() });
        }
    }
}

impl<K, V> std::fmt::Debug for SkipListMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SkipListMap")
            .field("len", &self.len.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> SkipListMap<u64, String> {
        SkipListMap::new()
    }

    #[test]
    fn empty_map_behaviour() {
        let m = map();
        assert!(m.is_empty());
        assert_eq!(m.get_cloned(&1), None);
        assert!(!m.remove(&1));
        assert!(!m.contains_key(&0));
        assert_eq!(m.collect_range(None, None), vec![]);
    }

    #[test]
    fn put_get_remove_roundtrip() {
        let m = map();
        assert_eq!(m.put(5, "five".into()), PutOutcome::Inserted);
        assert_eq!(m.get_cloned(&5), Some("five".to_string()));
        assert_eq!(m.put(5, "FIVE".into()), PutOutcome::Replaced);
        assert_eq!(m.get_cloned(&5), Some("FIVE".to_string()));
        assert_eq!(m.len(), 1);
        assert!(m.remove(&5));
        assert!(!m.remove(&5));
        assert_eq!(m.get_cloned(&5), None);
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn put_if_absent_semantics() {
        let m = map();
        assert!(m.put_if_absent(1, "a".into()));
        assert!(!m.put_if_absent(1, "b".into()));
        assert_eq!(m.get_cloned(&1), Some("a".to_string()));
        m.remove(&1);
        assert!(m.put_if_absent(1, "c".into()));
        assert_eq!(m.get_cloned(&1), Some("c".to_string()));
    }

    #[test]
    fn ordered_iteration() {
        let m = map();
        for k in [5u64, 1, 9, 3, 7, 2, 8, 4, 6, 0] {
            m.put(k, k.to_string());
        }
        let keys: Vec<u64> = m
            .collect_range(None, None)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(keys, (0..10).collect::<Vec<_>>());
        // Bounded range [3, 7).
        let keys: Vec<u64> = m
            .collect_range(Some(&3), Some(&7))
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(keys, vec![3, 4, 5, 6]);
    }

    #[test]
    fn compute_if_present_replaces() {
        let m = map();
        assert!(!m.compute_if_present(&1, |v| v.clone()));
        m.put(1, "x".into());
        assert!(m.compute_if_present(&1, |v| format!("{v}{v}")));
        assert_eq!(m.get_cloned(&1), Some("xx".to_string()));
    }

    #[test]
    fn merge_upserts() {
        let m = map();
        m.merge(1, "init".into(), |v| format!("{v}+"));
        assert_eq!(m.get_cloned(&1), Some("init".to_string()));
        m.merge(1, "init".into(), |v| format!("{v}+"));
        assert_eq!(m.get_cloned(&1), Some("init+".to_string()));
    }

    #[test]
    fn floor_and_ceiling() {
        let m = map();
        for k in [10u64, 20, 30] {
            m.put(k, k.to_string());
        }
        assert_eq!(m.floor_with(&25, true, |k, _| *k), Some(20));
        assert_eq!(m.floor_with(&20, true, |k, _| *k), Some(20));
        assert_eq!(m.floor_with(&20, false, |k, _| *k), Some(10));
        assert_eq!(m.floor_with(&5, true, |k, _| *k), None);
        assert_eq!(m.ceiling_with(&25, true, |k, _| *k), Some(30));
        assert_eq!(m.ceiling_with(&20, true, |k, _| *k), Some(20));
        assert_eq!(m.ceiling_with(&20, false, |k, _| *k), Some(30));
        assert_eq!(m.ceiling_with(&35, true, |k, _| *k), None);
    }

    #[test]
    fn floor_skips_deleted_run() {
        let m = map();
        for k in 0..100u64 {
            m.put(k, k.to_string());
        }
        // Delete a long run right below the probe.
        for k in 50..100u64 {
            m.remove(&k);
        }
        assert_eq!(m.floor_with(&99, true, |k, _| *k), Some(49));
    }

    #[test]
    fn descending_matches_reverse_ascending() {
        let m = map();
        for k in 0..200u64 {
            m.put(k, k.to_string());
        }
        let mut asc: Vec<u64> = Vec::new();
        m.for_each_range(Some(&50), Some(&150), |k, _| {
            asc.push(*k);
            true
        });
        let mut desc: Vec<u64> = Vec::new();
        m.for_each_descending(&149, Some(&50), |k, _| {
            desc.push(*k);
            true
        });
        asc.reverse();
        assert_eq!(asc, desc);
    }

    #[test]
    fn len_tracks_inserts_and_removes() {
        let m = map();
        for k in 0..50u64 {
            m.put(k, String::new());
        }
        assert_eq!(m.len(), 50);
        for k in 0..25u64 {
            m.remove(&k);
        }
        assert_eq!(m.len(), 25);
        for k in 0..50u64 {
            m.put(k, String::new());
        }
        assert_eq!(m.len(), 50);
    }

    #[test]
    fn heap_accounting_balances() {
        use oak_gcheap::{HeapConfig, HeapModel, ManagedHeap};
        use std::sync::Arc;
        let heap = Arc::new(ManagedHeap::new(HeapConfig::with_capacity(1 << 30)));
        let m: SkipListMap<u64, Vec<u8>> =
            SkipListMap::with_heap(heap.clone(), |_: &u64| 24, |v: &Vec<u8>| v.len() + 40);
        for k in 0..100u64 {
            m.put(k, vec![0u8; 100]);
        }
        let live_after_insert = heap.stats().live_bytes;
        assert!(live_after_insert > 100 * 140);
        for k in 0..100u64 {
            m.remove(&k);
        }
        heap.collect_now();
        assert_eq!(heap.stats().live_bytes, 0, "all charges must be released");
        assert!(!heap.oom());
    }

    #[test]
    fn many_keys_random_order() {
        let m = SkipListMap::<u32, u32>::new();
        let mut keys: Vec<u32> = (0..5000).collect();
        // Deterministic shuffle.
        let mut state = 12345u64;
        for i in (1..keys.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            keys.swap(i, j);
        }
        for &k in &keys {
            assert!(m.put_if_absent(k, k * 2));
        }
        assert_eq!(m.len(), 5000);
        for &k in &keys {
            assert_eq!(m.get_cloned(&k), Some(k * 2));
        }
        let collected = m.collect_range(None, None);
        assert_eq!(collected.len(), 5000);
        assert!(collected.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
