//! `Skiplist-OffHeap`: the paper's off-heap skiplist baseline (§5.1).
//!
//! "Internally, Skiplist-OffHeap maintains a concurrent skiplist over an
//! intermediate cell object. Each cell references a key buffer and a value
//! buffer allocated in off-heap arenas through Oak's memory manager."
//!
//! The skiplist nodes and cells count as (simulated) on-heap metadata; the
//! key and value bytes live in an [`oak_mempool`] pool. Values are fronted
//! by Oak value headers, so this baseline exposes the same zero-copy,
//! atomic-in-place access as Oak — isolating *off-heap allocation* from
//! Oak's chunk organization, exactly the comparison the paper draws.

use std::cmp::Ordering as CmpOrdering;
use std::sync::Arc;

use oak_gcheap::{layout, HeapModel, NoopHeap};
use oak_mempool::{AllocError, HeaderRef, MemoryPool, PoolConfig, SliceRef, ValueStore};

use crate::list::SkipListMap;

/// The skiplist key: either a pooled (off-heap) key buffer owned by a cell,
/// or an inline byte copy used for lookups and bounds.
pub struct OffKey {
    repr: KeyRepr,
}

enum KeyRepr {
    Pooled { pool: Arc<MemoryPool>, r: SliceRef },
    Inline(Box<[u8]>),
}

impl OffKey {
    fn pooled(pool: Arc<MemoryPool>, r: SliceRef) -> Self {
        OffKey {
            repr: KeyRepr::Pooled { pool, r },
        }
    }

    fn inline(bytes: &[u8]) -> Self {
        OffKey {
            repr: KeyRepr::Inline(bytes.into()),
        }
    }

    /// The key bytes (for pooled keys, a zero-copy view into the arena).
    pub fn bytes(&self) -> &[u8] {
        match &self.repr {
            // SAFETY: key buffers are immutable from allocation until the
            // owning OffKey is dropped (which frees them).
            KeyRepr::Pooled { pool, r } => unsafe { pool.slice(*r) },
            KeyRepr::Inline(b) => b,
        }
    }
}

impl Drop for OffKey {
    fn drop(&mut self) {
        if let KeyRepr::Pooled { pool, r } = &self.repr {
            pool.free(*r);
        }
    }
}

impl Clone for OffKey {
    /// Clones are always inline copies; pooled buffers have a single owner.
    fn clone(&self) -> Self {
        OffKey::inline(self.bytes())
    }
}

impl PartialEq for OffKey {
    fn eq(&self, other: &Self) -> bool {
        self.bytes() == other.bytes()
    }
}
impl Eq for OffKey {}
impl PartialOrd for OffKey {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for OffKey {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        self.bytes().cmp(other.bytes())
    }
}

impl std::fmt::Debug for OffKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "OffKey({} bytes)", self.bytes().len())
    }
}

/// A concurrent ordered byte-key map over off-heap cells: the paper's
/// `Skiplist-OffHeap` baseline.
pub struct OffHeapSkipListMap {
    store: ValueStore,
    list: SkipListMap<OffKey, HeaderRef>,
}

impl OffHeapSkipListMap {
    /// Creates a map over a fresh pool with the given configuration.
    pub fn new(config: PoolConfig) -> Self {
        Self::with_heap(config, Arc::new(NoopHeap))
    }

    /// Creates a map charging `heap` for the simulated on-heap metadata
    /// (skiplist nodes and cell objects) while data bytes live off-heap.
    pub fn with_heap(config: PoolConfig, heap: Arc<dyn HeapModel>) -> Self {
        let pool = Arc::new(MemoryPool::new(config));
        let store = ValueStore::new(pool);
        // Per entry: the cell object (two references) plus the buffer
        // facade objects; key/value bytes themselves are off-heap.
        let list = SkipListMap::with_heap(
            heap,
            |_k| layout::object(2 * layout::REF_SIZE),
            |_v| layout::object(layout::REF_SIZE),
        );
        OffHeapSkipListMap { store, list }
    }

    /// The backing pool (for footprint statistics).
    pub fn pool(&self) -> &Arc<MemoryPool> {
        self.store.pool()
    }

    /// Number of live mappings.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Zero-copy get: applies `f` to the value bytes under the header read
    /// lock.
    pub fn get_with<R>(&self, key: &[u8], f: impl FnOnce(&[u8]) -> R) -> Option<R> {
        let lookup = OffKey::inline(key);
        self.list
            .get_with(&lookup, |h| self.store.read(*h, f).ok())
            .flatten()
    }

    /// Copying get (legacy-API shape).
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.get_with(key, |b| b.to_vec())
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &[u8]) -> bool {
        self.get_with(key, |_| ()).is_some()
    }

    fn new_cell(&self, key: &[u8], value: &[u8]) -> Result<(OffKey, HeaderRef), AllocError> {
        let kref = self.store.pool().allocate(key.len())?;
        // SAFETY: fresh, unpublished allocation.
        unsafe { self.store.pool().write_initial(kref, key) };
        let h = match self.store.allocate_value(value) {
            Ok(h) => h,
            Err(e) => {
                self.store.pool().free(kref);
                return Err(e);
            }
        };
        Ok((OffKey::pooled(self.store.pool().clone(), kref), h))
    }

    /// Inserts or replaces `key → value`.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), AllocError> {
        loop {
            let lookup = OffKey::inline(key);
            let existing = self.list.get_with(&lookup, |h| *h);
            if let Some(h) = existing {
                if self.store.put(h, value)? {
                    return Ok(());
                }
                // Concurrently removed; retry as insert.
                continue;
            }
            let (k, h) = self.new_cell(key, value)?;
            if self.list.put_if_absent(k, h) {
                return Ok(());
            }
            // Lost the race: free the value cell (the key buffer is freed
            // by OffKey's drop) and retry as replace.
            self.store.remove(h);
        }
    }

    /// Inserts `key → value` if absent; returns `true` if inserted.
    pub fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<bool, AllocError> {
        loop {
            let lookup = OffKey::inline(key);
            let exists = self
                .list
                .get_with(&lookup, |h| !self.store.is_deleted(*h))
                .unwrap_or(false);
            if exists {
                return Ok(false);
            }
            let (k, h) = self.new_cell(key, value)?;
            if self.list.put_if_absent(k, h) {
                return Ok(true);
            }
            self.store.remove(h);
        }
    }

    /// Atomically updates the value in place under the header write lock
    /// (this baseline shares Oak's value-access layer, hence its compute is
    /// atomic, unlike `Skiplist-OnHeap`'s CAS-replace).
    pub fn compute_if_present(
        &self,
        key: &[u8],
        f: impl FnOnce(&mut oak_mempool::ValueBytesMut<'_>),
    ) -> bool {
        let lookup = OffKey::inline(key);
        self.list
            .get_with(&lookup, |h| self.store.compute(*h, f).is_some())
            .unwrap_or(false)
    }

    /// `putIfAbsentComputeIfPresent`: insert if absent, else atomic
    /// in-place update. Returns `true` if this call inserted.
    pub fn put_if_absent_compute_if_present(
        &self,
        key: &[u8],
        value: &[u8],
        f: impl Fn(&mut oak_mempool::ValueBytesMut<'_>),
    ) -> Result<bool, AllocError> {
        loop {
            let lookup = OffKey::inline(key);
            let computed = self
                .list
                .get_with(&lookup, |h| self.store.compute(*h, &f).is_some())
                .unwrap_or(false);
            if computed {
                return Ok(false);
            }
            let (k, h) = self.new_cell(key, value)?;
            if self.list.put_if_absent(k, h) {
                return Ok(true);
            }
            self.store.remove(h);
        }
    }

    /// Last live key (anchor for unbounded descending scans); O(n).
    pub fn last_key(&self) -> Option<Vec<u8>> {
        self.list.last_key().map(|k| k.bytes().to_vec())
    }

    /// Removes the mapping; returns `true` if this call removed it.
    pub fn remove(&self, key: &[u8]) -> bool {
        let lookup = OffKey::inline(key);
        match self.list.remove_with(&lookup, |h| *h) {
            Some(h) => {
                self.store.remove(h);
                true
            }
            None => false,
        }
    }

    /// Ascending zero-copy scan over `[lo, hi)`; `f` gets key and value
    /// bytes. Returns entries visited; stops early when `f` returns false.
    pub fn for_each_range(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> usize {
        let lo_k = lo.map(OffKey::inline);
        let hi_k = hi.map(OffKey::inline);
        let mut count = 0;
        self.list
            .for_each_range(lo_k.as_ref(), hi_k.as_ref(), |k, h| {
                match self.store.read(*h, |v| f(k.bytes(), v)) {
                    Ok(keep) => {
                        count += 1;
                        keep
                    }
                    Err(_) => true, // concurrently deleted; skip
                }
            });
        count
    }

    /// Descending scan, one fresh lookup per key — the skiplist baseline
    /// behaviour Figure 4f measures.
    pub fn for_each_descending(
        &self,
        from: &[u8],
        lo: Option<&[u8]>,
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> usize {
        let from_k = OffKey::inline(from);
        let lo_k = lo.map(OffKey::inline);
        let mut count = 0;
        self.list
            .for_each_descending(&from_k, lo_k.as_ref(), |k, h| {
                match self.store.read(*h, |v| f(k.bytes(), v)) {
                    Ok(keep) => {
                        count += 1;
                        keep
                    }
                    Err(_) => true,
                }
            });
        count
    }
}

impl std::fmt::Debug for OffHeapSkipListMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OffHeapSkipListMap")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> OffHeapSkipListMap {
        OffHeapSkipListMap::new(PoolConfig::small())
    }

    #[test]
    fn put_get_remove() {
        let m = map();
        m.put(b"alpha", b"1").unwrap();
        m.put(b"beta", b"2").unwrap();
        assert_eq!(m.get(b"alpha").unwrap(), b"1");
        assert_eq!(m.get(b"beta").unwrap(), b"2");
        assert_eq!(m.get(b"gamma"), None);
        m.put(b"alpha", b"replaced-with-longer-value").unwrap();
        assert_eq!(m.get(b"alpha").unwrap(), b"replaced-with-longer-value");
        assert!(m.remove(b"alpha"));
        assert!(!m.remove(b"alpha"));
        assert_eq!(m.get(b"alpha"), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn put_if_absent_and_compute() {
        let m = map();
        assert!(m.put_if_absent(b"k", &0u64.to_le_bytes()).unwrap());
        assert!(!m.put_if_absent(b"k", &9u64.to_le_bytes()).unwrap());
        for _ in 0..5 {
            assert!(m.compute_if_present(b"k", |b| {
                let v = b.get_u64(0);
                b.put_u64(0, v + 1);
            }));
        }
        assert_eq!(
            m.get_with(b"k", |b| u64::from_le_bytes(b.try_into().unwrap())),
            Some(5)
        );
        assert!(!m.compute_if_present(b"missing", |_| {}));
    }

    #[test]
    fn upsert_path() {
        let m = map();
        for _ in 0..3 {
            m.put_if_absent_compute_if_present(b"ctr", &1u64.to_le_bytes(), |b| {
                let v = b.get_u64(0);
                b.put_u64(0, v + 1);
            })
            .unwrap();
        }
        assert_eq!(
            m.get_with(b"ctr", |b| u64::from_le_bytes(b.try_into().unwrap())),
            Some(3)
        );
    }

    #[test]
    fn scans_in_order() {
        let m = map();
        for i in (0..50u32).rev() {
            m.put(format!("key{i:04}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        let mut keys = Vec::new();
        m.for_each_range(Some(b"key0010"), Some(b"key0020"), |k, _| {
            keys.push(String::from_utf8(k.to_vec()).unwrap());
            true
        });
        assert_eq!(keys.len(), 10);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(keys[0], "key0010");

        let mut desc = Vec::new();
        m.for_each_descending(b"key0049", Some(b"key0040"), |k, _| {
            desc.push(String::from_utf8(k.to_vec()).unwrap());
            true
        });
        assert_eq!(desc.len(), 10);
        assert!(desc.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn footprint_shrinks_on_remove() {
        let m = map();
        for i in 0..100u32 {
            m.put(&i.to_le_bytes(), &[0u8; 500]).unwrap();
        }
        let live_full = m.pool().stats().live_bytes;
        for i in 0..100u32 {
            m.remove(&i.to_le_bytes());
        }
        // Value payloads are freed eagerly; key buffers follow when the
        // epoch collector destroys the unlinked nodes.
        let live_after = m.pool().stats().live_bytes;
        assert!(live_after < live_full, "{live_after} !< {live_full}");
    }

    #[test]
    fn concurrent_mixed_ops() {
        let m = std::sync::Arc::new(map());
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500u32 {
                    let k = ((t * 500 + i) % 200).to_le_bytes();
                    match i % 4 {
                        0 => {
                            m.put(&k, &i.to_le_bytes()).unwrap();
                        }
                        1 => {
                            let _ = m.get(&k);
                        }
                        2 => {
                            m.compute_if_present(&k, |b| {
                                if b.len() >= 4 {
                                    let v =
                                        u32::from_le_bytes(b.as_slice()[..4].try_into().unwrap());
                                    b.as_mut_slice()[..4]
                                        .copy_from_slice(&v.wrapping_add(1).to_le_bytes());
                                }
                            });
                        }
                        _ => {
                            m.remove(&k);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Map is internally consistent.
        let mut n = 0;
        m.for_each_range(None, None, |_, _| {
            n += 1;
            true
        });
        assert_eq!(n, m.len());
    }
}
