//! # oak-skiplist — concurrent ordered-map baselines and Oak's index
//!
//! This crate provides the ordered-map substrates the Oak paper compares
//! against, plus the index structure Oak itself uses internally:
//!
//! * [`SkipListMap`] — a lock-free concurrent skiplist in the style of
//!   `java.util.concurrent.ConcurrentSkipListMap` (the paper's
//!   `Skiplist-OnHeap` baseline). Removal nulls the value first (the
//!   linearization point), then marks and unlinks the tower; nodes are
//!   reclaimed through `crossbeam-epoch` once every tower link is gone.
//!   `compute`/`merge` are CAS-replace loops, faithfully *not* atomic
//!   in-place — the contrast the paper draws in §1.1 and Figure 4b.
//!   Descending scans are implemented as one fresh O(log N) lookup per
//!   step, exactly the behaviour Figure 4f punishes.
//!   It optionally charges a [`HeapModel`](oak_gcheap::HeapModel) for every
//!   simulated Java object, enabling the Figure 3/5 memory experiments.
//!
//! * [`OffHeapSkipListMap`](offheap::OffHeapSkipListMap) — the paper's
//!   `Skiplist-OffHeap` baseline: the same skiplist over *cells* that
//!   reference key/value buffers in an [`oak_mempool`] pool, exposing a
//!   zero-copy API.
//!
//! * [`btree::LockedBTreeMap`] — a coarse-locked off-heap B+-tree standing
//!   in for the MapDB comparator the paper mentions (§1.2, §5.1).

#![warn(missing_docs)]

pub mod btree;
pub mod offheap;

mod list;
mod rng;

pub use list::{PutOutcome, SkipListMap, MAX_HEIGHT};
