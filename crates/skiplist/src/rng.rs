//! Tower-height generation.
//!
//! A small per-thread xorshift generator: heights are geometric with
//! p = 1/2, capped at [`MAX_HEIGHT`](crate::MAX_HEIGHT). Keeping this
//! dependency-free (no `rand` in the library's hot path) follows the
//! standard-library skiplist implementations.

use std::cell::Cell;

thread_local! {
    static STATE: Cell<u64> = Cell::new(seed());
}

fn seed() -> u64 {
    // Mix thread identity and a global counter; quality is irrelevant, we
    // only need decorrelated streams per thread.
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0x9E37_79B9_7F4A_7C15);
    let c = COUNTER.fetch_add(0x2545_F491_4F6C_DD1D, Ordering::Relaxed);
    c | 1
}

/// Next raw pseudo-random word (xorshift64*).
pub fn next_u64() -> u64 {
    STATE.with(|s| {
        let mut x = s.get();
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        s.set(x);
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    })
}

/// Samples a tower height in `1..=max`: geometric with p = 1/2.
pub fn random_height(max: usize) -> usize {
    let bits = next_u64();
    // Count trailing ones ⇒ geometric(1/2); +1 for the base level.
    let h = (bits.trailing_ones() as usize) + 1;
    h.min(max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heights_are_in_range_and_geometricish() {
        let mut counts = [0usize; 33];
        for _ in 0..100_000 {
            let h = random_height(32);
            assert!((1..=32).contains(&h));
            counts[h] += 1;
        }
        // Roughly half of all towers are height 1, a quarter height 2, …
        assert!(
            counts[1] > 40_000 && counts[1] < 60_000,
            "h=1: {}",
            counts[1]
        );
        assert!(
            counts[2] > 17_000 && counts[2] < 33_000,
            "h=2: {}",
            counts[2]
        );
        assert!(counts[1] > counts[2] && counts[2] > counts[3]);
    }

    #[test]
    fn streams_differ_across_threads() {
        let a = next_u64();
        let b = std::thread::spawn(next_u64).join().unwrap();
        assert_ne!(a, b);
    }
}
