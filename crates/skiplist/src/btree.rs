//! A coarse-locked off-heap B+-tree — the MapDB comparator stand-in.
//!
//! The paper mentions evaluating "the open-source concurrent off-heap
//! B-tree implementation from MapDB, but it failed to scale to big
//! datasets, performing at least ten-fold slower than Oak" (§1.2, §5.1).
//! This module provides an equivalent qualitative comparator: a correct
//! B+-tree whose keys and values live off-heap in an [`oak_mempool`] pool,
//! guarded by a single reader-writer lock (reads share, updates serialize).
//! Its performance role in the benchmarks is to reproduce the ≥10× gap, not
//! to be a competitive design.

use std::sync::Arc;

use parking_lot::RwLock;

use oak_mempool::{AllocError, HeaderRef, MemoryPool, PoolConfig, SliceRef, ValueStore};

/// Maximum number of keys per node; split at this fan-out.
const MAX_KEYS: usize = 32;

enum Node {
    Internal {
        /// `keys[i]` separates `children[i]` (< key) from `children[i+1]` (≥ key).
        keys: Vec<Box<[u8]>>,
        children: Vec<Node>,
    },
    Leaf {
        /// Pooled key buffers, sorted.
        keys: Vec<SliceRef>,
        vals: Vec<HeaderRef>,
    },
}

/// A coarse-locked off-heap B+-tree map with byte keys.
pub struct LockedBTreeMap {
    store: ValueStore,
    root: RwLock<Node>,
    len: RwLock<usize>,
}

impl LockedBTreeMap {
    /// Creates an empty tree over a fresh pool.
    pub fn new(config: PoolConfig) -> Self {
        let pool = Arc::new(MemoryPool::new(config));
        LockedBTreeMap {
            store: ValueStore::new(pool),
            root: RwLock::new(Node::Leaf {
                keys: Vec::new(),
                vals: Vec::new(),
            }),
            len: RwLock::new(0),
        }
    }

    /// The backing pool (for footprint statistics).
    pub fn pool(&self) -> &Arc<MemoryPool> {
        self.store.pool()
    }

    /// Number of live mappings.
    pub fn len(&self) -> usize {
        *self.len.read()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn key_bytes(&self, r: SliceRef) -> &[u8] {
        // SAFETY: key buffers are immutable while referenced by the tree;
        // structural changes hold the write lock.
        unsafe { self.store.pool().slice(r) }
    }

    /// Header lookup inside a node already guarded by either lock mode.
    fn find_header(&self, node: &Node, key: &[u8]) -> Option<HeaderRef> {
        match node {
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|k| k.as_ref() <= key);
                self.find_header(&children[idx], key)
            }
            Node::Leaf { keys, vals } => {
                let idx = keys.partition_point(|&k| self.key_bytes(k) < key);
                if idx < keys.len() && self.key_bytes(keys[idx]) == key {
                    Some(vals[idx])
                } else {
                    None
                }
            }
        }
    }

    /// Zero-copy get under the shared lock.
    pub fn get_with<R>(&self, key: &[u8], f: impl FnOnce(&[u8]) -> R) -> Option<R> {
        let root = self.root.read();
        let h = self.find_header(&root, key)?;
        self.store.read(h, f).ok()
    }

    /// Copying get.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.get_with(key, |b| b.to_vec())
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &[u8]) -> bool {
        self.get_with(key, |_| ()).is_some()
    }

    /// Pre-splits a full root so the recursive insert never splits upward
    /// past its parent.
    fn pre_split_root(&self, root: &mut Node) {
        if node_full(root) {
            let old_root = std::mem::replace(
                root,
                Node::Internal {
                    keys: Vec::new(),
                    children: Vec::new(),
                },
            );
            let (sep, (left, right)) = self.split(old_root);
            let Node::Internal { keys, children } = root else {
                unreachable!()
            };
            keys.push(sep);
            children.push(left);
            children.push(right);
        }
    }

    /// Inserts or replaces `key → value` under the exclusive lock.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), AllocError> {
        let mut root = self.root.write();
        self.pre_split_root(&mut root);
        let inserted = self.insert_non_full(&mut root, key, value)?;
        if inserted {
            *self.len.write() += 1;
        }
        Ok(())
    }

    /// Inserts `key → value` if absent; returns `true` if this call
    /// inserted. Atomic: the check and the insert share one exclusive lock
    /// acquisition.
    pub fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<bool, AllocError> {
        let mut root = self.root.write();
        if self.find_header(&root, key).is_some() {
            return Ok(false);
        }
        self.pre_split_root(&mut root);
        let inserted = self.insert_non_full(&mut root, key, value)?;
        if inserted {
            *self.len.write() += 1;
        }
        Ok(inserted)
    }

    /// Atomically updates the value in place under the shared lock plus
    /// the value header's write lock. Returns whether the value was
    /// present.
    pub fn compute_if_present(
        &self,
        key: &[u8],
        f: impl FnOnce(&mut oak_mempool::ValueBytesMut<'_>),
    ) -> bool {
        let root = self.root.read();
        match self.find_header(&root, key) {
            Some(h) => self.store.compute(h, f).is_some(),
            None => false,
        }
    }

    /// `putIfAbsentComputeIfPresent`: insert if absent, else atomic
    /// in-place update. Returns `true` if this call inserted.
    pub fn put_if_absent_compute_if_present(
        &self,
        key: &[u8],
        value: &[u8],
        f: impl Fn(&mut oak_mempool::ValueBytesMut<'_>),
    ) -> Result<bool, AllocError> {
        let mut root = self.root.write();
        if let Some(h) = self.find_header(&root, key) {
            if self.store.compute(h, &f).is_some() {
                return Ok(false);
            }
            // Deleted header: cannot persist under the write lock (remove
            // also drops the slot), but recover by overwriting via insert.
        }
        self.pre_split_root(&mut root);
        let inserted = self.insert_non_full(&mut root, key, value)?;
        if inserted {
            *self.len.write() += 1;
        }
        Ok(inserted)
    }

    fn insert_non_full(
        &self,
        node: &mut Node,
        key: &[u8],
        value: &[u8],
    ) -> Result<bool, AllocError> {
        match node {
            Node::Internal { keys, children } => {
                let mut idx = keys.partition_point(|k| k.as_ref() <= key);
                if node_full(&children[idx]) {
                    let child = std::mem::replace(
                        &mut children[idx],
                        Node::Leaf {
                            keys: Vec::new(),
                            vals: Vec::new(),
                        },
                    );
                    let (sep, (left, right)) = self.split(child);
                    let go_right = key >= sep.as_ref();
                    keys.insert(idx, sep);
                    children[idx] = left;
                    children.insert(idx + 1, right);
                    if go_right {
                        idx += 1;
                    }
                }
                self.insert_non_full(&mut children[idx], key, value)
            }
            Node::Leaf { keys, vals } => {
                let idx = keys.partition_point(|&k| self.key_bytes(k) < key);
                if idx < keys.len() && self.key_bytes(keys[idx]) == key {
                    // Replace in place through the value header.
                    if self.store.put(vals[idx], value)? {
                        return Ok(false);
                    }
                    // Header was deleted (only possible via remove, which
                    // also removes the slot under the write lock) — cannot
                    // happen here, but recover by overwriting the slot.
                    let h = self.store.allocate_value(value)?;
                    vals[idx] = h;
                    return Ok(false);
                }
                let kref = self.store.pool().allocate(key.len())?;
                // SAFETY: fresh allocation.
                unsafe { self.store.pool().write_initial(kref, key) };
                let h = self.store.allocate_value(value)?;
                keys.insert(idx, kref);
                vals.insert(idx, h);
                Ok(true)
            }
        }
    }

    /// Splits a full node, returning the separator key and the two halves.
    fn split(&self, node: Node) -> (Box<[u8]>, (Node, Node)) {
        match node {
            Node::Leaf { mut keys, mut vals } => {
                let mid = keys.len() / 2;
                let right_keys = keys.split_off(mid);
                let right_vals = vals.split_off(mid);
                let sep: Box<[u8]> = self.key_bytes(right_keys[0]).into();
                (
                    sep,
                    (
                        Node::Leaf { keys, vals },
                        Node::Leaf {
                            keys: right_keys,
                            vals: right_vals,
                        },
                    ),
                )
            }
            Node::Internal {
                mut keys,
                mut children,
            } => {
                let mid = keys.len() / 2;
                let right_keys = keys.split_off(mid + 1);
                let sep = keys.pop().expect("non-empty internal node");
                let right_children = children.split_off(mid + 1);
                (
                    sep,
                    (
                        Node::Internal { keys, children },
                        Node::Internal {
                            keys: right_keys,
                            children: right_children,
                        },
                    ),
                )
            }
        }
    }

    /// Removes `key`; returns `true` if present. Leaves may become
    /// under-full (no rebalancing — fine for a comparator whose workloads
    /// are ingestion-dominated, as MapDB's were in the paper's setup).
    pub fn remove(&self, key: &[u8]) -> bool {
        let mut root = self.root.write();
        let removed = self.remove_rec(&mut root, key);
        if let Some((kref, h)) = removed {
            self.store.remove(h);
            self.store.pool().free(kref);
            *self.len.write() -= 1;
            true
        } else {
            false
        }
    }

    fn remove_rec(&self, node: &mut Node, key: &[u8]) -> Option<(SliceRef, HeaderRef)> {
        match node {
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|k| k.as_ref() <= key);
                self.remove_rec(&mut children[idx], key)
            }
            Node::Leaf { keys, vals } => {
                let idx = keys.partition_point(|&k| self.key_bytes(k) < key);
                if idx < keys.len() && self.key_bytes(keys[idx]) == key {
                    let kref = keys.remove(idx);
                    let h = vals.remove(idx);
                    Some((kref, h))
                } else {
                    None
                }
            }
        }
    }

    /// Ascending scan over `[lo, hi)` under the shared lock.
    pub fn for_each_range(
        &self,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> usize {
        let root = self.root.read();
        let mut count = 0;
        self.scan_rec(&root, lo, hi, &mut f, &mut count);
        count
    }

    /// Descending scan from `from` (inclusive; `None` = from the last key)
    /// down to `lo` (inclusive; `None` = unbounded) under the shared lock.
    pub fn for_each_descending(
        &self,
        from: Option<&[u8]>,
        lo: Option<&[u8]>,
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> usize {
        let root = self.root.read();
        let mut count = 0;
        self.scan_desc_rec(&root, from, lo, &mut f, &mut count);
        count
    }

    fn scan_desc_rec(
        &self,
        node: &Node,
        from: Option<&[u8]>,
        lo: Option<&[u8]>,
        f: &mut impl FnMut(&[u8], &[u8]) -> bool,
        count: &mut usize,
    ) -> bool {
        match node {
            Node::Internal { keys, children } => {
                let start = match from {
                    Some(b) => keys.partition_point(|k| k.as_ref() <= b),
                    None => children.len() - 1,
                };
                for child in children.iter().take(start + 1).rev() {
                    if !self.scan_desc_rec(child, from, lo, f, count) {
                        return false;
                    }
                }
                true
            }
            Node::Leaf { keys, vals } => {
                for i in (0..keys.len()).rev() {
                    let kb = self.key_bytes(keys[i]);
                    if let Some(b) = from {
                        if kb > b {
                            continue;
                        }
                    }
                    if let Some(l) = lo {
                        if kb < l {
                            return false; // descending: below lo = done
                        }
                    }
                    let keep = self.store.read(vals[i], |v| f(kb, v)).unwrap_or(true);
                    *count += 1;
                    if !keep {
                        return false;
                    }
                }
                true
            }
        }
    }

    fn scan_rec(
        &self,
        node: &Node,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        f: &mut impl FnMut(&[u8], &[u8]) -> bool,
        count: &mut usize,
    ) -> bool {
        match node {
            Node::Internal { keys, children } => {
                let start = match lo {
                    Some(l) => keys.partition_point(|k| k.as_ref() <= l),
                    None => 0,
                };
                for (i, child) in children.iter().enumerate().skip(start) {
                    if let Some(h) = hi {
                        if i > 0 && keys[i - 1].as_ref() >= h {
                            return false;
                        }
                    }
                    if !self.scan_rec(child, lo, hi, f, count) {
                        return false;
                    }
                }
                true
            }
            Node::Leaf { keys, vals } => {
                for (i, &kref) in keys.iter().enumerate() {
                    let kb = self.key_bytes(kref);
                    if let Some(l) = lo {
                        if kb < l {
                            continue;
                        }
                    }
                    if let Some(h) = hi {
                        if kb >= h {
                            return false;
                        }
                    }
                    let keep = self.store.read(vals[i], |v| f(kb, v)).unwrap_or(true);
                    *count += 1;
                    if !keep {
                        return false;
                    }
                }
                true
            }
        }
    }
}

fn node_full(node: &Node) -> bool {
    match node {
        Node::Internal { keys, .. } => keys.len() >= MAX_KEYS,
        Node::Leaf { keys, .. } => keys.len() >= MAX_KEYS,
    }
}

impl std::fmt::Debug for LockedBTreeMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockedBTreeMap")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> LockedBTreeMap {
        LockedBTreeMap::new(PoolConfig::small())
    }

    #[test]
    fn insert_get_small() {
        let t = tree();
        t.put(b"b", b"2").unwrap();
        t.put(b"a", b"1").unwrap();
        t.put(b"c", b"3").unwrap();
        assert_eq!(t.get(b"a").unwrap(), b"1");
        assert_eq!(t.get(b"b").unwrap(), b"2");
        assert_eq!(t.get(b"c").unwrap(), b"3");
        assert_eq!(t.get(b"d"), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn replace_keeps_len() {
        let t = tree();
        t.put(b"k", b"v1").unwrap();
        t.put(b"k", b"v2-longer").unwrap();
        assert_eq!(t.get(b"k").unwrap(), b"v2-longer");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn many_keys_split_correctly() {
        let t = tree();
        let n = 2_000u32;
        for i in 0..n {
            t.put(format!("{:08}", i * 7 % n).as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        assert_eq!(t.len() as u32, n);
        for i in 0..n {
            assert!(
                t.get(format!("{:08}", i).as_bytes()).is_some(),
                "missing {i}"
            );
        }
        // Full scan is sorted and complete.
        let mut prev: Option<Vec<u8>> = None;
        let count = t.for_each_range(None, None, |k, _| {
            if let Some(p) = &prev {
                assert!(p.as_slice() < k);
            }
            prev = Some(k.to_vec());
            true
        });
        assert_eq!(count as u32, n);
    }

    #[test]
    fn range_scan_bounds() {
        let t = tree();
        for i in 0..100u32 {
            t.put(format!("{i:04}").as_bytes(), b"v").unwrap();
        }
        let mut keys = Vec::new();
        t.for_each_range(Some(b"0020"), Some(b"0030"), |k, _| {
            keys.push(String::from_utf8(k.to_vec()).unwrap());
            true
        });
        assert_eq!(keys.len(), 10);
        assert_eq!(keys.first().unwrap(), "0020");
        assert_eq!(keys.last().unwrap(), "0029");
    }

    #[test]
    fn remove_works() {
        let t = tree();
        for i in 0..500u32 {
            t.put(format!("{i:04}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        for i in (0..500u32).step_by(2) {
            assert!(t.remove(format!("{i:04}").as_bytes()));
        }
        assert!(!t.remove(b"0000"));
        assert_eq!(t.len(), 250);
        for i in 0..500u32 {
            let got = t.get(format!("{i:04}").as_bytes());
            assert_eq!(got.is_some(), i % 2 == 1, "key {i}");
        }
    }

    #[test]
    fn concurrent_readers_with_writer() {
        let t = std::sync::Arc::new(tree());
        for i in 0..1_000u32 {
            t.put(&i.to_be_bytes(), &i.to_le_bytes()).unwrap();
        }
        let mut handles = Vec::new();
        for _ in 0..3 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1_000u32 {
                    assert!(t.get(&i.to_be_bytes()).is_some());
                }
            }));
        }
        let w = {
            let t = t.clone();
            std::thread::spawn(move || {
                for i in 1_000..1_500u32 {
                    t.put(&i.to_be_bytes(), b"w").unwrap();
                }
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        w.join().unwrap();
        assert_eq!(t.len(), 1_500);
    }
}
