//! Table 1: the zero-copy API against the legacy ConcurrentNavigableMap
//! API — every row of the table, checked for behavioural parity.
//!
//! | ZC                                        | Legacy                          |
//! |-------------------------------------------|---------------------------------|
//! | OakRBuffer get(K)                         | V get(K)                        |
//! | keySet()/valueSet()/entrySet() (+stream)  | Set<K>/Set<V>/Set<K,V>          |
//! | void put(K,V)                             | V put(K,V)                      |
//! | void remove(K)                            | V remove(K)                     |
//! | boolean putIfAbsent(K,V)                  | V putIfAbsent(K,V)              |
//! | boolean computeIfPresent(K, f(OakWBuffer))| non-atomic V computeIfPresent   |
//! | boolean putIfAbsentComputeIfPresent(...)  | non-atomic V merge(...)         |

use oak_kv::legacy::TypedOakMap;
use oak_kv::serde_api::{StringSerializer, U64Serializer};
use oak_kv::{OakMap, OakMapConfig};

fn zc_map() -> OakMap {
    OakMap::with_config(OakMapConfig::small())
}

fn legacy_map() -> TypedOakMap<U64Serializer, StringSerializer> {
    TypedOakMap::new(zc_map(), U64Serializer, StringSerializer)
}

#[test]
fn row_get_zc_returns_buffer_legacy_returns_object() {
    let m = zc_map();
    m.put(b"k", b"value").unwrap();
    // ZC: a buffer view.
    let buf = m.zc().get(b"k").unwrap();
    assert_eq!(buf.to_vec().unwrap(), b"value");
    // Legacy: a deserialized object copy.
    let t = legacy_map();
    t.put(&1, &"value".to_string()).unwrap();
    let obj: String = t.get(&1).unwrap();
    assert_eq!(obj, "value");
}

#[test]
fn row_put_zc_returns_nothing_legacy_returns_old() {
    let m = zc_map();
    // ZC put: no old value (they type as `()`).
    m.zc().put(b"k", b"v1").unwrap();
    m.zc().put(b"k", b"v2").unwrap();
    assert_eq!(m.get_copy(b"k").unwrap(), b"v2");
    // Legacy put: returns the previous value atomically.
    let t = legacy_map();
    assert_eq!(t.put(&9, &"old".to_string()).unwrap(), None);
    assert_eq!(t.put(&9, &"new".to_string()).unwrap(), Some("old".into()));
}

#[test]
fn row_remove_zc_void_legacy_returns_old() {
    let m = zc_map();
    m.put(b"k", b"v").unwrap();
    m.zc().remove(b"k");
    assert!(m.get(b"k").is_none());

    let t = legacy_map();
    t.put(&3, &"bye".to_string()).unwrap();
    assert_eq!(t.remove(&3), Some("bye".to_string()));
    assert_eq!(t.remove(&3), None);
}

#[test]
fn row_put_if_absent_boolean() {
    let m = zc_map();
    assert!(m.zc().put_if_absent(b"k", b"v").unwrap());
    assert!(!m.zc().put_if_absent(b"k", b"w").unwrap());
    let t = legacy_map();
    assert!(t.put_if_absent(&5, &"x".to_string()).unwrap());
    assert!(!t.put_if_absent(&5, &"y".to_string()).unwrap());
}

#[test]
fn row_compute_if_present_zc_is_atomic_in_place() {
    // ZC compute mutates Oak's own buffer; the same OakRBuffer view
    // observes the change — impossible in the legacy object API.
    let m = zc_map();
    m.put(b"k", b"aaaa").unwrap();
    let view = m.zc().get(b"k").unwrap();
    assert!(m
        .zc()
        .compute_if_present(b"k", |b| b.as_mut_slice().fill(b'z')));
    assert_eq!(view.to_vec().unwrap(), b"zzzz");
    // Legacy compute: object round-trip.
    let t = legacy_map();
    t.put(&1, &"aa".to_string()).unwrap();
    assert!(t.compute_if_present(&1, |s| s.to_uppercase()));
    assert_eq!(t.get(&1), Some("AA".to_string()));
}

#[test]
fn row_put_if_absent_compute_if_present() {
    let m = zc_map();
    for _ in 0..4 {
        m.zc()
            .put_if_absent_compute_if_present(b"agg", &10u64.to_le_bytes(), |b| {
                let v = u64::from_le_bytes(b.as_slice().try_into().unwrap());
                b.as_mut_slice().copy_from_slice(&(v + 5).to_le_bytes());
            })
            .unwrap();
    }
    assert_eq!(
        m.get_with(b"agg", |v| u64::from_le_bytes(v.try_into().unwrap())),
        Some(25) // 10 inserted, then +5 three times
    );
}

#[test]
fn row_entry_sets_and_stream_sets() {
    let m = zc_map();
    for i in 0..100u32 {
        m.put(format!("k{i:03}").as_bytes(), &i.to_le_bytes())
            .unwrap();
    }
    let zc = m.zc();

    // entrySet(): ephemeral buffer pairs.
    let pairs: Vec<(Vec<u8>, Vec<u8>)> = zc
        .entry_set(Some(b"k010"), Some(b"k020"))
        .map(|(k, v)| (k.to_vec().unwrap(), v.to_vec().unwrap()))
        .collect();
    assert_eq!(pairs.len(), 10);
    assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0));

    // entryStreamSet(): same contents, no per-entry objects.
    let mut streamed = Vec::new();
    zc.entry_stream_set(Some(b"k010"), Some(b"k020"), |k, v| {
        streamed.push((k.to_vec(), v.to_vec()));
        true
    });
    assert_eq!(pairs, streamed);

    // descendingMap(): reverse order, same contents.
    let desc: Vec<Vec<u8>> = zc
        .descending_entry_set(Some(b"k019"), Some(b"k010"))
        .map(|(k, _)| k.to_vec().unwrap())
        .collect();
    let mut asc_keys: Vec<Vec<u8>> = pairs.into_iter().map(|(k, _)| k).collect();
    asc_keys.reverse();
    assert_eq!(desc, asc_keys);
}

#[test]
fn buffer_after_concurrent_delete_raises() {
    // §2.2: "A get() method throws a ConcurrentModificationException in
    // case the mapping is concurrently deleted."
    let m = zc_map();
    m.put(b"doomed", b"v").unwrap();
    let buf = m.zc().get(b"doomed").unwrap();
    m.zc().remove(b"doomed");
    assert!(matches!(
        buf.read(|_| ()),
        Err(oak_kv::OakError::ConcurrentModification)
    ));
}
