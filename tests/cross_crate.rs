//! Integration tests spanning the workspace crates: Oak over the shared
//! pool, the heap simulator driving baselines, the Druid index over Oak,
//! and agreement between all three ordered-map implementations.

use std::collections::BTreeMap;
use std::sync::Arc;

use oak_kv::baselines::{LockedBTreeMap, OffHeapSkipListMap, SkipListMap};
use oak_kv::druid::agg::AggSpec;
use oak_kv::druid::index::{IncrementalIndex, LegacyIndex, OakIndex};
use oak_kv::druid::row::{DimKind, DimValue, InputRow, Schema};
use oak_kv::gcheap::{HeapConfig, HeapModel, ManagedHeap};
use oak_kv::mempool::PoolConfig;
use oak_kv::{OakMap, OakMapConfig};

/// A deterministic operation tape applied to every implementation.
fn op_tape(n: u64) -> Vec<(u8, u64, u64)> {
    let mut state = 0xDEADBEEFu64;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 4) as u8, (state >> 8) % 512, state >> 32)
        })
        .collect()
}

fn key(k: u64) -> Vec<u8> {
    format!("key{k:06}").into_bytes()
}

fn val(v: u64) -> Vec<u8> {
    format!("val{v:020}").into_bytes()
}

#[test]
fn all_three_maps_agree_with_model() {
    let oak = OakMap::with_config(OakMapConfig::small());
    let skiplist: SkipListMap<Vec<u8>, Vec<u8>> = SkipListMap::new();
    let offheap = OffHeapSkipListMap::new(PoolConfig::small());
    let btree = LockedBTreeMap::new(PoolConfig::small());
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

    for (op, k, v) in op_tape(3_000) {
        let (kb, vb) = (key(k), val(v));
        match op {
            0 | 1 => {
                oak.put(&kb, &vb).unwrap();
                skiplist.put(kb.clone(), vb.clone());
                offheap.put(&kb, &vb).unwrap();
                btree.put(&kb, &vb).unwrap();
                model.insert(kb, vb);
            }
            2 => {
                let removed = model.remove(&kb).is_some();
                assert_eq!(oak.remove(&kb), removed, "oak");
                assert_eq!(skiplist.remove(&kb), removed, "skiplist");
                assert_eq!(offheap.remove(&kb), removed, "offheap");
                assert_eq!(btree.remove(&kb), removed, "btree");
            }
            _ => {
                let want = model.get(&kb).cloned();
                assert_eq!(oak.get_copy(&kb), want, "oak get");
                assert_eq!(skiplist.get_cloned(&kb), want, "skiplist get");
                assert_eq!(offheap.get(&kb), want, "offheap get");
                assert_eq!(btree.get(&kb), want, "btree get");
            }
        }
    }

    // Full-scan agreement.
    let want: Vec<(Vec<u8>, Vec<u8>)> = model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    let mut got_oak = Vec::new();
    oak.for_each_in(None, None, |k, v| {
        got_oak.push((k.to_vec(), v.to_vec()));
        true
    });
    assert_eq!(got_oak, want);
    assert_eq!(skiplist.collect_range(None, None), want);
    let mut got_off = Vec::new();
    offheap.for_each_range(None, None, |k, v| {
        got_off.push((k.to_vec(), v.to_vec()));
        true
    });
    assert_eq!(got_off, want);
    let mut got_bt = Vec::new();
    btree.for_each_range(None, None, |k, v| {
        got_bt.push((k.to_vec(), v.to_vec()));
        true
    });
    assert_eq!(got_bt, want);
}

#[test]
fn heap_simulator_observes_skiplist_lifecycle() {
    let heap = Arc::new(ManagedHeap::new(HeapConfig::with_capacity(64 << 20)));
    let list: SkipListMap<Vec<u8>, Vec<u8>> = SkipListMap::with_heap(
        heap.clone(),
        |k: &Vec<u8>| oak_kv::gcheap::layout::boxed_bytes(k.len()),
        |v: &Vec<u8>| oak_kv::gcheap::layout::boxed_bytes(v.len()),
    );
    for i in 0..2_000u64 {
        list.put(key(i), val(i));
    }
    let full = heap.stats();
    assert!(full.live_bytes > 2_000 * 100, "charges recorded");
    for i in 0..2_000u64 {
        list.remove(&key(i));
    }
    heap.collect_now();
    let empty = heap.stats();
    assert_eq!(empty.live_bytes, 0, "all charges released after GC");
    assert!(empty.collections >= 1);
    assert!(!heap.oom());
}

#[test]
fn druid_index_over_oak_matches_legacy_backend() {
    let schema = Schema::rollup(
        vec![("d".to_string(), DimKind::Long)],
        vec![AggSpec::Count, AggSpec::LongSum(0)],
    );
    let oak_idx = OakIndex::new(schema.clone(), OakMapConfig::small());
    let legacy_idx = LegacyIndex::unaccounted(schema);
    for i in 0..5_000u64 {
        let row = InputRow {
            timestamp: (i % 50) as i64,
            dims: vec![DimValue::Long((i % 13) as i64)],
            metrics: vec![1.0],
        };
        oak_idx.insert(&row).unwrap();
        legacy_idx.insert(&row).unwrap();
    }
    assert_eq!(oak_idx.num_keys(), legacy_idx.num_keys());
    let collect = |idx: &dyn IncrementalIndex| {
        let mut rows = Vec::new();
        idx.scan(0, 100, &mut |ts, vals| {
            rows.push((ts, vals.to_vec()));
            true
        });
        rows
    };
    assert_eq!(collect(&oak_idx), collect(&legacy_idx));
}

#[test]
fn oak_footprint_tracks_pool_reality() {
    // The fast footprint estimate (§1.1) must reconcile with real
    // allocation counts across a grow/shrink cycle.
    let m = OakMap::with_config(OakMapConfig::small());
    let stats0 = m.stats();
    assert_eq!(stats0.len, 0);

    for i in 0..1_000u64 {
        m.put(&key(i), &val(i)).unwrap();
    }
    let grown = m.stats();
    // ≥ raw data: 1000 × (9 + 23 + 16 header).
    assert!(grown.pool.live_bytes >= 1_000 * 48);
    assert!(grown.pool.reserved_bytes >= grown.pool.live_bytes);

    for i in 0..1_000u64 {
        m.remove(&key(i));
    }
    let shrunk = m.stats();
    assert!(shrunk.pool.live_bytes < grown.pool.live_bytes);
    assert_eq!(shrunk.len, 0);
}

#[test]
fn mixed_workload_through_facade_types() {
    // Exercise the facade's re-exports end to end: map + zc view + stats.
    let m = OakMap::new();
    let zc = m.zc();
    for i in 0..500u64 {
        zc.put(&key(i), &val(i)).unwrap();
    }
    let n = zc.entry_stream_set(None, None, |_, _| true);
    assert_eq!(n, 500);
    assert_eq!(m.stats().len, 500);
}
