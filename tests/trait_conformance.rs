//! Conformance suite for the workspace-wide `OrderedKvMap` trait: every
//! implementation — OakMap, ShardedOakMap (both splitters), the on-heap
//! and off-heap skiplists, and the locked B+-tree — must agree with a
//! sequential `BTreeMap` model under the same operation script, and handle
//! the empty/single-key edges identically.

use std::collections::BTreeMap;

use oak_kv::baselines::{LockedBTreeMap, OffHeapSkipListMap};
use oak_kv::mempool::PoolConfig;
use oak_kv::{
    KeyComparator, OakMap, OakMapConfig, OnHeapSkipListMap, OrderedKvMap, ShardSplitter,
    ShardedOakMap, ZeroCopyRead,
};

/// Lexicographic order whose `prefix()` keeps the trait default (`None`),
/// opting the map out of prefix acceleration: every comparison takes the
/// full off-heap compare path, which must be observationally identical.
#[derive(Debug, Clone, Copy, Default)]
struct PrefixlessLex;

impl KeyComparator for PrefixlessLex {
    fn compare(&self, a: &[u8], b: &[u8]) -> std::cmp::Ordering {
        a.cmp(b)
    }
}

/// Deterministic xorshift64* so the script needs no external RNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

fn key(id: u64) -> Vec<u8> {
    format!("key-{id:05}").into_bytes()
}

fn value(tag: u64) -> Vec<u8> {
    tag.to_le_bytes().to_vec() // fixed 8 bytes: in-place compute can't resize
}

fn bump(buf: &mut [u8]) {
    let v = u64::from_le_bytes(buf[..8].try_into().unwrap());
    buf[..8].copy_from_slice(&v.wrapping_add(1).to_le_bytes());
}

/// Every implementation under test, behind the trait.
fn all_maps() -> Vec<(&'static str, Box<dyn ZeroCopyRead>)> {
    let range_bounds = vec![key(25), key(50), key(75)];
    vec![
        (
            "OakMap",
            Box::new(OakMap::with_config(OakMapConfig::small())) as Box<dyn ZeroCopyRead>,
        ),
        (
            "OakMap-prefixless",
            Box::new(OakMap::with_comparator(
                OakMapConfig::small(),
                PrefixlessLex,
            )),
        ),
        (
            "ShardedOak-hash",
            Box::new(ShardedOakMap::with_config(4, OakMapConfig::small())),
        ),
        (
            "ShardedOak-range",
            Box::new(ShardedOakMap::with_splitter(
                4,
                ShardSplitter::KeyRanges(range_bounds),
                OakMapConfig::small(),
            )),
        ),
        ("OnHeapSkipList", Box::new(OnHeapSkipListMap::new())),
        (
            "OffHeapSkipList",
            Box::new(OffHeapSkipListMap::new(PoolConfig::small())),
        ),
        (
            "LockedBTree",
            Box::new(LockedBTreeMap::new(PoolConfig::small())),
        ),
    ]
}

/// Collects the full ascending contents through the trait.
fn ascend_all(map: &dyn OrderedKvMap) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut out = Vec::new();
    map.ascend(None, None, &mut |k, v| {
        out.push((k.to_vec(), v.to_vec()));
        true
    });
    out
}

/// Collects the full descending contents through the trait.
fn descend_all(map: &dyn OrderedKvMap) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut out = Vec::new();
    map.descend(None, None, &mut |k, v| {
        out.push((k.to_vec(), v.to_vec()));
        true
    });
    out
}

fn assert_matches_model(
    name: &str,
    map: &dyn OrderedKvMap,
    model: &BTreeMap<Vec<u8>, Vec<u8>>,
    universe: u64,
) {
    assert_eq!(map.len(), model.len(), "{name}: len diverged");
    assert_eq!(map.is_empty(), model.is_empty(), "{name}: is_empty");

    for id in 0..universe {
        let k = key(id);
        assert_eq!(
            map.get_copy(&k),
            model.get(&k).cloned(),
            "{name}: get_copy({id})"
        );
        assert_eq!(
            map.contains_key(&k),
            model.contains_key(&k),
            "{name}: contains_key({id})"
        );
    }

    let want: Vec<(Vec<u8>, Vec<u8>)> = model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    assert_eq!(ascend_all(map), want, "{name}: ascending scan diverged");

    let mut want_desc = want.clone();
    want_desc.reverse();
    assert_eq!(
        descend_all(map),
        want_desc,
        "{name}: descending scan diverged"
    );
}

#[test]
fn sequential_model_equivalence() {
    const UNIVERSE: u64 = 100;
    const OPS: usize = 4_000;

    for (name, map) in all_maps() {
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut rng = Rng(0x5eed_0000 + name.len() as u64);

        for step in 0..OPS {
            let id = rng.next() % UNIVERSE;
            let k = key(id);
            let tag = rng.next();
            match rng.next() % 5 {
                0 => {
                    map.put(&k, &value(tag)).unwrap();
                    model.insert(k, value(tag));
                }
                1 => {
                    let inserted = map.put_if_absent(&k, &value(tag)).unwrap();
                    assert_eq!(
                        inserted,
                        !model.contains_key(&k),
                        "{name}: putIfAbsent step {step}"
                    );
                    model.entry(k).or_insert_with(|| value(tag));
                }
                2 => {
                    let removed = map.remove(&k);
                    assert_eq!(
                        removed,
                        model.remove(&k).is_some(),
                        "{name}: remove step {step}"
                    );
                }
                3 => {
                    let present = map.compute_if_present(&k, &bump);
                    assert_eq!(
                        present,
                        model.contains_key(&k),
                        "{name}: computeIfPresent step {step}"
                    );
                    if let Some(v) = model.get_mut(&k) {
                        bump(v);
                    }
                }
                _ => {
                    let inserted = map
                        .put_if_absent_compute_if_present(&k, &value(tag), &bump)
                        .unwrap();
                    assert_eq!(
                        inserted,
                        !model.contains_key(&k),
                        "{name}: pifacip step {step}"
                    );
                    match model.get_mut(&k) {
                        Some(v) => bump(v),
                        None => {
                            model.insert(k, value(tag));
                        }
                    }
                }
            }
        }
        assert_matches_model(name, map.as_ref(), &model, UNIVERSE);
    }
}

#[test]
fn empty_map_edges() {
    for (name, map) in all_maps() {
        assert_eq!(map.len(), 0, "{name}");
        assert!(map.is_empty(), "{name}");
        assert_eq!(map.get_copy(b"missing"), None, "{name}");
        assert!(!map.remove(b"missing"), "{name}");
        assert!(!map.compute_if_present(b"missing", &bump), "{name}");
        assert_eq!(map.ascend(None, None, &mut |_, _| true), 0, "{name}");
        assert_eq!(map.descend(None, None, &mut |_, _| true), 0, "{name}");
        assert!(
            !map.read_with(b"missing", &mut |_| panic!("{name}: read on empty")),
            "{name}"
        );
    }
}

#[test]
fn single_key_edges() {
    for (name, map) in all_maps() {
        map.put(&key(42), &value(7)).unwrap();

        // Zero-copy read sees the stored bytes.
        let mut seen = Vec::new();
        assert!(
            map.read_with(&key(42), &mut |v| seen = v.to_vec()),
            "{name}"
        );
        assert_eq!(seen, value(7), "{name}");

        // Descending from nothing (the global last key) finds it.
        assert_eq!(
            descend_all(map.as_ref()),
            vec![(key(42), value(7))],
            "{name}"
        );
        // Descending from below it finds nothing.
        assert_eq!(
            map.descend(Some(&key(10)), None, &mut |_, _| true),
            0,
            "{name}: descend from below"
        );
        // Ascending from above it finds nothing.
        assert_eq!(
            map.ascend(Some(&key(50)), None, &mut |_, _| true),
            0,
            "{name}: ascend from above"
        );
        // Bounded window [42, 43) contains exactly it.
        assert_eq!(
            map.ascend(Some(&key(42)), Some(&key(43)), &mut |_, _| true),
            1,
            "{name}: tight window"
        );

        assert!(map.remove(&key(42)), "{name}");
        assert!(map.is_empty(), "{name}");
    }
}

#[test]
fn cross_shard_descending_order() {
    // Keys land on different shards under both splitters; the merged
    // descending scan must still yield one strictly descending sequence.
    for (name, map) in all_maps() {
        if !name.starts_with("ShardedOak") {
            continue;
        }
        for id in 0..100 {
            map.put(&key(id), &value(id)).unwrap();
        }
        let got = descend_all(map.as_ref());
        assert_eq!(got.len(), 100, "{name}");
        for w in got.windows(2) {
            assert!(w[0].0 > w[1].0, "{name}: not strictly descending");
        }
        // Bounded descent: from key-0074 (inclusive) down to key-0025
        // (inclusive) crosses every range-splitter boundary.
        let mut keys = Vec::new();
        map.descend(Some(&key(74)), Some(&key(25)), &mut |k, _| {
            keys.push(k.to_vec());
            true
        });
        assert_eq!(keys.len(), 50, "{name}: bounded descent size");
        assert_eq!(keys.first().unwrap(), &key(74), "{name}");
        assert_eq!(keys.last().unwrap(), &key(25), "{name}");
    }
}

#[test]
fn sharded_matches_plain_oak() {
    let plain = OakMap::with_config(OakMapConfig::small());
    let sharded = ShardedOakMap::with_config(4, OakMapConfig::small());
    let mut rng = Rng(0xabcd_ef01);
    for _ in 0..2_000 {
        let id = rng.next() % 200;
        let k = key(id);
        match rng.next() % 3 {
            0 => {
                let tag = rng.next();
                plain.put(&k, &value(tag)).unwrap();
                OrderedKvMap::put(&sharded, &k, &value(tag)).unwrap();
            }
            1 => {
                assert_eq!(plain.remove(&k), sharded.remove(&k));
            }
            _ => {
                assert_eq!(
                    plain.compute_if_present(&k, |b| bump(b.as_mut_slice())),
                    sharded.compute_if_present(&k, |b| bump(b.as_mut_slice()))
                );
            }
        }
    }
    assert_eq!(plain.len(), sharded.len());
    assert_eq!(ascend_all(&plain), ascend_all(&sharded));
    assert_eq!(descend_all(&plain), descend_all(&sharded));
    // Aggregated stats: shard lens sum to the map len.
    let per_shard: usize = sharded.shard_stats().iter().map(|s| s.len).sum();
    assert_eq!(per_shard, sharded.len());
    assert_eq!(sharded.stats().len, sharded.len());
    sharded.validate();
}
