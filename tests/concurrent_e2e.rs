//! End-to-end concurrency: multi-threaded workloads through the facade,
//! mixing Oak operations with Druid-style ingestion and scans, verifying
//! the system-level invariants the paper's semantics promise.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use oak_kv::druid::agg::AggSpec;
use oak_kv::druid::index::{IncrementalIndex, OakIndex};
use oak_kv::druid::row::{DimKind, DimValue, InputRow, Schema};
use oak_kv::druid::AggValue;
use oak_kv::{OakMap, OakMapConfig};

fn key(k: u64) -> Vec<u8> {
    format!("key{k:08}").into_bytes()
}

#[test]
fn writers_readers_scanners_coexist() {
    let m = Arc::new(OakMap::with_config(OakMapConfig::small()));
    // Immutable backbone the scanners assert on.
    for i in (0..4_000u64).step_by(4) {
        m.put(&key(i), &i.to_le_bytes()).unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();

    // Churning writers on non-backbone keys.
    for t in 0..2u64 {
        let (m, stop) = (m.clone(), stop.clone());
        handles.push(std::thread::spawn(move || {
            let mut i = t;
            while !stop.load(Ordering::Relaxed) {
                let k = key(i * 4 % 4_000 + 1 + (t % 3));
                m.put(&k, &i.to_le_bytes()).unwrap();
                m.remove(&k);
                i += 1;
            }
        }));
    }
    // Aggregating writer exercising atomic in-place compute.
    {
        let (m, stop) = (m.clone(), stop.clone());
        m.put(b"aaa-counter", &0u64.to_le_bytes()).unwrap();
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                m.compute_if_present(b"aaa-counter", |b| {
                    let v = u64::from_le_bytes(b.as_slice().try_into().unwrap());
                    b.as_mut_slice().copy_from_slice(&(v + 1).to_le_bytes());
                });
            }
        }));
    }

    // Scanning readers: backbone completeness in both directions.
    for _ in 0..30 {
        let mut backbone = 0;
        m.for_each_in(Some(&key(0)), None, |kb, _| {
            if kb.len() == 11 {
                let id: u64 = std::str::from_utf8(&kb[3..]).unwrap().parse().unwrap();
                if id.is_multiple_of(4) {
                    backbone += 1;
                }
            }
            true
        });
        assert_eq!(backbone, 1_000, "ascending lost backbone keys");

        let mut backbone_desc = 0;
        m.for_each_descending(None, Some(&key(0)), |kb, _| {
            if kb.len() == 11 {
                let id: u64 = std::str::from_utf8(&kb[3..]).unwrap().parse().unwrap();
                if id.is_multiple_of(4) {
                    backbone_desc += 1;
                }
            }
            true
        });
        assert_eq!(backbone_desc, 1_000, "descending lost backbone keys");
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    // The counter's value equals the number of successful computes — no
    // lost updates.
    let ctr = m
        .get_with(b"aaa-counter", |v| {
            u64::from_le_bytes(v.try_into().unwrap())
        })
        .unwrap();
    assert!(ctr > 0);
}

#[test]
fn concurrent_druid_ingestion_with_queries() {
    let idx = Arc::new(OakIndex::new(
        Schema::rollup(
            vec![("shard".to_string(), DimKind::Long)],
            vec![AggSpec::Count, AggSpec::DoubleSum(0)],
        ),
        OakMapConfig::small(),
    ));
    let total_inserted = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for t in 0..3u64 {
        let (idx, total) = (idx.clone(), total_inserted.clone());
        handles.push(std::thread::spawn(move || {
            for i in 0..3_000u64 {
                idx.insert(&InputRow {
                    timestamp: ((t * 3_000 + i) % 60) as i64,
                    dims: vec![DimValue::Long((i % 9) as i64)],
                    metrics: vec![2.0],
                })
                .unwrap();
                total.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    // Queries run during ingestion: counts are monotone snapshots.
    let mut last_total = 0i64;
    for _ in 0..20 {
        let mut sum = 0i64;
        idx.scan(0, 60, &mut |_, vals| {
            if let AggValue::Long(c) = vals[0] {
                sum += c;
            }
            true
        });
        assert!(sum >= 0);
        last_total = last_total.max(sum);
    }
    for h in handles {
        h.join().unwrap();
    }
    // Final: every tuple accounted exactly once.
    let mut final_count = 0i64;
    let mut final_sum = 0.0;
    idx.scan(0, 60, &mut |_, vals| {
        if let AggValue::Long(c) = vals[0] {
            final_count += c;
        }
        if let AggValue::Double(s) = vals[1] {
            final_sum += s;
        }
        true
    });
    assert_eq!(final_count as u64, total_inserted.load(Ordering::Relaxed));
    assert_eq!(final_sum, 2.0 * final_count as f64);
    assert!(idx.num_keys() <= 60 * 9);
}

#[test]
fn subrange_views_remain_consistent_under_churn() {
    let m = Arc::new(OakMap::with_config(OakMapConfig::small()));
    for i in 0..2_000u64 {
        m.put(&key(i), b"x").unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    let churn = {
        let (m, stop) = (m.clone(), stop.clone());
        std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                m.remove(&key(i % 2_000));
                m.put(&key(i % 2_000), b"y").unwrap();
                i += 7;
            }
        })
    };
    for _ in 0..50 {
        // subMap-style bounded views must respect their bounds exactly.
        let lo = key(500);
        let hi = key(1_500);
        m.for_each_in(Some(&lo), Some(&hi), |kb, _| {
            assert!(kb >= lo.as_slice() && kb < hi.as_slice());
            true
        });
        let from = key(1_499);
        m.for_each_descending(Some(&from), Some(&lo), |kb, _| {
            assert!(kb >= lo.as_slice() && kb <= from.as_slice());
            true
        });
    }
    stop.store(true, Ordering::Relaxed);
    churn.join().unwrap();
}
