//! The shared arena pool across map instances (§3.2) and the Druid I²
//! lifecycle (§6): indexes are created, filled, disposed, and replaced
//! continuously; their arenas must circulate through the shared reservoir
//! with no allocator traffic and a bounded total footprint.

use std::sync::Arc;

use oak_kv::druid::agg::AggSpec;
use oak_kv::druid::index::{IncrementalIndex, OakIndex};
use oak_kv::druid::row::{DimKind, DimValue, InputRow, Schema};
use oak_kv::mempool::{ArenaPool, PoolConfig};
use oak_kv::{OakMap, OakMapConfig};

fn shared() -> Arc<ArenaPool> {
    Arc::new(ArenaPool::new(1 << 20, 8)) // 8 × 1 MB reservoir
}

fn cfg(shared: &Arc<ArenaPool>) -> OakMapConfig {
    OakMapConfig {
        chunk_capacity: 64,
        pool: PoolConfig {
            magazines: false,
            lockfree: false,
            arena_size: 1 << 20, // overridden by the reservoir's size anyway
            max_arenas: 8,
            ..Default::default()
        },
        ..OakMapConfig::default()
    }
    .shared_arenas(shared.clone())
}

#[test]
fn arenas_return_on_disposal() {
    let reservoir = shared();
    {
        let m = OakMap::with_config(cfg(&reservoir));
        for i in 0..2_000u32 {
            m.put(format!("k{i:05}").as_bytes(), &[0u8; 300]).unwrap();
        }
        let s = reservoir.stats();
        assert!(s.outstanding >= 1, "map must have drawn arenas");
        drop(m);
    }
    let s = reservoir.stats();
    assert_eq!(s.outstanding, 0, "disposal must return every arena");
    assert_eq!(s.taken, s.returned);
}

#[test]
fn two_instances_share_the_reservoir() {
    let reservoir = shared();
    let a = OakMap::with_config(cfg(&reservoir));
    let b = OakMap::with_config(cfg(&reservoir));
    for i in 0..1_000u32 {
        a.put(format!("a{i:05}").as_bytes(), &[1u8; 300]).unwrap();
        b.put(format!("b{i:05}").as_bytes(), &[2u8; 300]).unwrap();
    }
    let s = reservoir.stats();
    assert!(s.outstanding >= 2);
    assert!(s.outstanding <= s.capacity);
    // Data is fully isolated between instances.
    assert!(a.get(b"b00000").is_none());
    assert!(b.get(b"a00000").is_none());
    drop(a);
    let mid = reservoir.stats().outstanding;
    // b keeps its arenas; a's returned.
    assert!(mid >= 1 && mid < s.outstanding + 1);
    drop(b);
    assert_eq!(reservoir.stats().outstanding, 0);
}

#[test]
fn reservoir_exhaustion_caps_growth() {
    let reservoir = Arc::new(ArenaPool::new(64 << 10, 2)); // tiny: 2 × 64 KB
    let m = OakMap::with_config(
        OakMapConfig {
            chunk_capacity: 32,
            ..OakMapConfig::default()
        }
        .shared_arenas(reservoir.clone()),
    );
    let mut ok = 0;
    for i in 0..10_000u32 {
        match m.put(format!("k{i:05}").as_bytes(), &[3u8; 256]) {
            Ok(()) => ok += 1,
            Err(oak_kv::OakError::OutOfMemory | oak_kv::OakError::Alloc(_)) => break,
            Err(e) => panic!("{e}"),
        }
    }
    assert!(ok > 0, "some inserts must fit");
    assert_eq!(reservoir.stats().outstanding, 2, "both arenas drawn");
    // The map is still readable after exhaustion.
    assert_eq!(m.len(), ok);
}

#[test]
fn druid_i2_lifecycle_recycles_arenas() {
    // The paper's I² lifecycle: fill, dispose, repeat. Footprint must stay
    // bounded by the reservoir across generations.
    let reservoir = shared();
    let schema = || {
        Schema::rollup(
            vec![("d".to_string(), DimKind::Long)],
            vec![AggSpec::Count, AggSpec::DoubleSum(0)],
        )
    };
    for generation in 0..5 {
        let idx = OakIndex::new(schema(), cfg(&reservoir));
        for i in 0..3_000u64 {
            idx.insert(&InputRow {
                timestamp: i as i64,
                dims: vec![DimValue::Long((i % 50) as i64)],
                metrics: vec![1.0],
            })
            .unwrap();
        }
        assert_eq!(idx.num_keys(), 3_000, "generation {generation}");
        // "Persist" = drain via a scan (the real system writes a segment),
        // then dispose.
        let mut rows = 0;
        idx.scan(0, 3_000, &mut |_, _| {
            rows += 1;
            true
        });
        assert_eq!(rows, 3_000);
        drop(idx);
        assert_eq!(
            reservoir.stats().outstanding,
            0,
            "generation {generation} leaked arenas"
        );
    }
    let s = reservoir.stats();
    // Arenas circulated: at least one take per generation, all returned.
    assert!(s.taken >= 5);
    assert_eq!(s.taken, s.returned);
}
